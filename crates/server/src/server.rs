//! The `ioenc serve` loop: NDJSON over stdio, and a readiness-driven
//! event loop for TCP that speaks NDJSON and (optionally) HTTP/1.1 on
//! the same port, backed by a scoped worker pool, bounded queuing with
//! load shedding, inline `stats`/`shutdown` operations and graceful
//! drain.
//!
//! Concurrency shape: the stdio main loop, or the single event-loop
//! thread ([`poller`]-driven, one nonblocking socket set), parses each
//! request and either answers inline (`stats`, `shutdown`, malformed
//! requests, shed load) or enqueues an encode job. `std::thread::scope`
//! workers pop jobs, run the shared [`outcome`] pipeline with
//! `Parallelism::Off` (the pool itself is the parallelism) and hand the
//! response back — directly to the stdio sink, or through a completion
//! queue plus [`poller::Waker`] to the event loop, which owns all
//! sockets and does every read and write itself. Shutdown closes the
//! queue; workers finish every accepted job before exiting, so no
//! request is silently dropped.
//!
//! Per-connection protocol is auto-detected from the first byte (when
//! [`ServeOptions::http`] is on): `{` starts the NDJSON protocol,
//! anything else HTTP/1.1. NDJSON responses may arrive out of request
//! order (the documented protocol); HTTP responses are held and
//! released strictly in request order, which is what pipelining
//! requires.

use crate::cache::ResultCache;
use crate::diskcache::DiskCache;
use crate::exec::{failure_json, outcome, EncodeSpec, Mode, Outcome, PROTOCOL_VERSION};
use crate::http;
use crate::poller::{self, Events, Interest, Poller, WAKER_TOKEN};
use crate::queue::BoundedQueue;
use crate::session::SessionRegistry;
use ioenc_core::json::Json;
use ioenc_core::{CancelToken, CostFunction, EncodeError, Parallelism};
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration for [`serve_stdio`] / [`serve_tcp`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeOptions {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Bounded queue capacity; excess encode requests are shed with an
    /// `overloaded` response.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries; `0` disables the cache
    /// (including any disk tier).
    pub cache_entries: usize,
    /// Accept HTTP/1.1 on the TCP listener (per-connection
    /// auto-detected; NDJSON connections still work). Off by default so
    /// plain-NDJSON deployments never change behavior.
    pub http: bool,
    /// Directory for the persistent shared result cache; `None` keeps
    /// the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Requested shard count for a freshly created cache directory
    /// (rounded to a power of two; an existing directory's pinned count
    /// wins).
    pub cache_shards: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_capacity: 64,
            cache_entries: 1024,
            http: false,
            cache_dir: None,
            cache_shards: 4,
        }
    }
}

impl ServeOptions {
    /// Default options: 4 workers, a 64-slot queue, a 1024-entry cache,
    /// NDJSON only, memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (floored at 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the queue capacity (floored at 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the cache capacity; `0` disables caching.
    pub fn with_cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries;
        self
    }

    /// Enables (or disables) HTTP/1.1 on the TCP listener.
    pub fn with_http(mut self, http: bool) -> Self {
        self.http = http;
        self
    }

    /// Backs the result cache with a persistent shared directory.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the requested shard count for a fresh cache directory.
    pub fn with_cache_shards(mut self, shards: u32) -> Self {
        self.cache_shards = shards.max(1);
        self
    }
}

/// Where a response line goes: shared, line-locked writer.
type Sink = Arc<Mutex<Box<dyn Write + Send>>>;

/// How a worker hands its result back.
#[derive(Clone)]
enum Reply {
    /// Write the envelope line under the sink lock (stdio mode).
    Sink(Sink),
    /// Push a [`Completion`] for connection `token`, response slot
    /// `seq`, and wake the event loop.
    Loop {
        /// The connection's poller token.
        token: usize,
        /// The response's per-connection sequence number.
        seq: u64,
    },
}

struct Job {
    /// The request's `id`, re-rendered as JSON and echoed verbatim.
    id: String,
    text: String,
    spec: EncodeSpec,
    reply: Reply,
}

/// A finished job traveling from a worker back to the event loop.
struct Completion {
    token: usize,
    seq: u64,
    /// The full NDJSON envelope line (newline-terminated).
    line: String,
}

struct Shared {
    cache: Option<ResultCache>,
    queue: BoundedQueue<Job>,
    sessions: SessionRegistry,
    cancel: CancelToken,
    shutdown: AtomicBool,
    shed: AtomicU64,
    processed: AtomicU64,
    workers: usize,
    completions: Mutex<Vec<Completion>>,
    loop_waker: Mutex<Option<poller::Waker>>,
}

impl Shared {
    fn new(opts: &ServeOptions) -> std::io::Result<Self> {
        let cache = if opts.cache_entries > 0 {
            Some(match &opts.cache_dir {
                Some(dir) => ResultCache::with_disk(
                    opts.cache_entries,
                    DiskCache::open(dir, opts.cache_shards)?,
                ),
                None => ResultCache::new(opts.cache_entries),
            })
        } else {
            None
        };
        Ok(Shared {
            cache,
            queue: BoundedQueue::new(opts.queue_capacity),
            sessions: SessionRegistry::new(),
            cancel: CancelToken::new(),
            shutdown: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            workers: opts.workers.max(1),
            completions: Mutex::new(Vec::new()),
            loop_waker: Mutex::new(None),
        })
    }

    fn push_completion(&self, c: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(c);
        if let Some(w) = self
            .loop_waker
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
        {
            w.wake();
        }
    }

    fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

/// The one NDJSON response envelope: id echoed verbatim, protocol
/// version, result object, newline-terminated.
fn envelope(id: &str, result: &str) -> String {
    format!("{{\"id\":{id},\"v\":{PROTOCOL_VERSION},\"result\":{result}}}\n")
}

fn write_response(sink: &Sink, id: &str, result: &str) {
    let line = envelope(id, result);
    let mut w = sink.lock().unwrap_or_else(|p| p.into_inner());
    // A vanished client (broken pipe, closed socket) must not take the
    // server down; its remaining responses are simply dropped.
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

fn deliver(shared: &Shared, reply: &Reply, id: &str, result: &str) {
    match reply {
        Reply::Sink(sink) => write_response(sink, id, result),
        Reply::Loop { token, seq } => shared.push_completion(Completion {
            token: *token,
            seq: *seq,
            line: envelope(id, result),
        }),
    }
}

fn worker(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            outcome(
                &job.text,
                &job.spec,
                shared.cache.as_ref(),
                Some(&shared.cancel),
            )
        }));
        let out = result.unwrap_or_else(|_| Outcome {
            json: Json::obj()
                .field("ok", false)
                .field(
                    "error",
                    Json::obj()
                        .field("class", "internal")
                        .field("message", "worker panicked; request abandoned"),
                )
                .render(),
            exit_code: 1,
        });
        shared.processed.fetch_add(1, Ordering::Relaxed);
        deliver(shared, &job.reply, &job.id, &out.json);
    }
}

fn u64_field(req: &Json, name: &str) -> Result<Option<u64>, EncodeError> {
    match req.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| EncodeError::parse(format!("'{name}' must be a non-negative integer"))),
    }
}

fn usize_field(req: &Json, name: &str) -> Result<Option<usize>, EncodeError> {
    Ok(u64_field(req, name)?.map(|n| n as usize))
}

/// Translates an `encode`/`open` request object into `(text, spec)`.
pub(crate) fn parse_encode_request(req: &Json) -> Result<(String, EncodeSpec), EncodeError> {
    let text = req
        .get("text")
        .and_then(Json::as_str)
        .ok_or_else(|| EncodeError::parse("encode request needs a string 'text' field"))?
        .to_string();
    let mode_name = match req.get("mode") {
        None | Some(Json::Null) => "exact",
        Some(m) => m
            .as_str()
            .ok_or_else(|| EncodeError::parse("'mode' must be a string"))?,
    };
    let bits = usize_field(req, "bits")?;
    let prime_cap = usize_field(req, "prime_cap")?;
    let mode = match mode_name {
        "exact" => Mode::Exact { prime_cap },
        "heuristic" => {
            let cost = match req
                .get("cost")
                .and_then(Json::as_str)
                .unwrap_or("violations")
            {
                "violations" => CostFunction::Violations,
                "cubes" => CostFunction::Cubes,
                "literals" => CostFunction::Literals,
                other => {
                    return Err(EncodeError::parse(format!(
                        "unknown cost function '{other}'"
                    )))
                }
            };
            Mode::Heuristic { bits, cost }
        }
        "auto" => Mode::Auto,
        other => return Err(EncodeError::parse(format!("unknown mode '{other}'"))),
    };
    let deadline_ms = u64_field(req, "deadline_ms")?;
    if deadline_ms == Some(0) {
        return Err(EncodeError::limit("deadline_ms must be positive"));
    }
    Ok((
        text,
        EncodeSpec {
            mode,
            max_primes: usize_field(req, "max_primes")?,
            max_nodes: u64_field(req, "max_nodes")?,
            max_evals: u64_field(req, "max_evals")?,
            max_ps_steps: u64_field(req, "max_ps_steps")?,
            deadline_ms,
            parallelism: Parallelism::Off,
        },
    ))
}

fn stats_json(shared: &Shared) -> Json {
    let disk = match shared.cache.as_ref().and_then(|c| c.disk()) {
        Some(d) => {
            let s = d.stats();
            Json::obj()
                .field("enabled", true)
                .field("shards", u64::from(d.shard_count()))
                .field("records", d.indexed_records())
                .field("hits", s.hits.load(Ordering::Relaxed))
                .field("appends", s.appends.load(Ordering::Relaxed))
                .field("rejected", s.rejected.load(Ordering::Relaxed))
                .field("torn_bytes", s.torn_bytes.load(Ordering::Relaxed))
                .field("recovered", s.recovered.load(Ordering::Relaxed))
        }
        None => Json::obj().field("enabled", false),
    };
    let cache = match &shared.cache {
        Some(c) => Json::obj()
            .field("enabled", true)
            .field("capacity", c.capacity())
            .field("entries", c.len())
            .field("hits", c.hits())
            .field("misses", c.misses())
            .field("evictions", c.evictions())
            .field("verify_failures", c.verify_failures())
            .field("disk", disk),
        None => Json::obj()
            .field("enabled", false)
            .field("capacity", 0u64)
            .field("entries", 0u64)
            .field("hits", 0u64)
            .field("misses", 0u64)
            .field("evictions", 0u64)
            .field("verify_failures", 0u64)
            .field("disk", disk),
    };
    Json::obj()
        .field("ok", true)
        .field("workers", shared.workers)
        .field("sessions", shared.sessions.len())
        .field(
            "queue",
            Json::obj()
                .field("capacity", shared.queue.capacity())
                .field("depth", shared.queue.depth())
                .field("shed", shared.shed.load(Ordering::Relaxed))
                .field("processed", shared.processed.load(Ordering::Relaxed)),
        )
        .field("cache", cache)
}

fn overloaded_json(shared: &Shared) -> Json {
    Json::obj().field("ok", false).field(
        "error",
        Json::obj().field("class", "overloaded").field(
            "message",
            format!(
                "queue full (capacity {}); retry later",
                shared.queue.capacity()
            ),
        ),
    )
}

/// The typed error for an unsupported request `"v"`, mirroring the
/// [`failure_json`] shape with class `protocol`.
fn protocol_error_json(got: &Json) -> Json {
    Json::obj().field("ok", false).field(
        "error",
        Json::obj()
            .field("class", "protocol")
            .field("exit_code", 2u64)
            .field(
                "message",
                format!(
                    "unsupported protocol version {}; this server speaks v{PROTOCOL_VERSION}",
                    got.render()
                ),
            ),
    )
}

/// What [`dispatch_line`] decided about one request.
enum Dispatched {
    /// Empty line; no response.
    Nothing,
    /// Answered inline; emit this response.
    Immediate { id: String, result: String },
    /// An encode job was queued; its response arrives via the job's
    /// [`Reply`].
    Queued,
    /// Answered inline and the whole server is shutting down.
    Shutdown { id: String, result: String },
}

/// Handles one request line: answers `stats`/`shutdown`/sessions/errors
/// inline, queues `encode` jobs (with `reply` cloned into the job).
fn dispatch_line(shared: &Shared, line: &str, reply: &Reply) -> Dispatched {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Dispatched::Nothing;
    }
    let req = match Json::parse(trimmed) {
        Ok(j) => j,
        Err(msg) => {
            let e = EncodeError::parse(format!("invalid request JSON: {msg}"));
            return Dispatched::Immediate {
                id: "null".to_string(),
                result: failure_json(&e, None).render(),
            };
        }
    };
    let id = req
        .get("id")
        .map(Json::render)
        .unwrap_or_else(|| "null".to_string());
    // Version gate: absent means v1 (the first versioned protocol is also
    // the first protocol); anything else is a typed `protocol` error so
    // future clients fail loudly instead of misparsing v1 responses.
    match req.get("v") {
        None | Some(Json::Null) => {}
        Some(v) if v.as_u64() == Some(PROTOCOL_VERSION) => {}
        Some(v) => {
            return Dispatched::Immediate {
                id,
                result: protocol_error_json(v).render(),
            };
        }
    }
    let op = req.get("op").and_then(Json::as_str).unwrap_or("encode");
    match op {
        "stats" => Dispatched::Immediate {
            id,
            result: stats_json(shared).render(),
        },
        "shutdown" => {
            if req.get("abort").and_then(Json::as_bool).unwrap_or(false) {
                shared.cancel.cancel();
            }
            shared.shutdown.store(true, Ordering::SeqCst);
            Dispatched::Shutdown {
                id,
                result: Json::obj()
                    .field("ok", true)
                    .field("shutting_down", true)
                    .render(),
            }
        }
        // Session operations run inline: each mutates its session, so
        // per-session ordering is part of the protocol (see the
        // `session` module docs). They never touch the result cache.
        "open" | "delta" | "close" => {
            if shared.shutdown.load(Ordering::SeqCst) {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                return Dispatched::Immediate {
                    id,
                    result: overloaded_json(shared).render(),
                };
            }
            let result = match op {
                "open" => shared.sessions.open(&req),
                "delta" => shared.sessions.delta(&req),
                _ => shared.sessions.close(&req),
            };
            shared.processed.fetch_add(1, Ordering::Relaxed);
            Dispatched::Immediate {
                id,
                result: result.render(),
            }
        }
        "encode" => {
            if shared.shutdown.load(Ordering::SeqCst) {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                return Dispatched::Immediate {
                    id,
                    result: overloaded_json(shared).render(),
                };
            }
            match parse_encode_request(&req) {
                Ok((text, spec)) => {
                    let job = Job {
                        id: id.clone(),
                        text,
                        spec,
                        reply: reply.clone(),
                    };
                    if shared.queue.try_push(job).is_err() {
                        shared.shed.fetch_add(1, Ordering::Relaxed);
                        return Dispatched::Immediate {
                            id,
                            result: overloaded_json(shared).render(),
                        };
                    }
                    Dispatched::Queued
                }
                Err(e) => Dispatched::Immediate {
                    id,
                    result: failure_json(&e, None).render(),
                },
            }
        }
        other => {
            let e = EncodeError::parse(format!("unknown op '{other}'"));
            Dispatched::Immediate {
                id,
                result: failure_json(&e, None).render(),
            }
        }
    }
}

/// Serves NDJSON requests from `input`, writing responses to `sink`.
/// Returns after end-of-input or a `shutdown` request, once every
/// accepted job has been answered.
fn serve_reader<R: BufRead>(opts: &ServeOptions, input: R, sink: Sink) -> std::io::Result<()> {
    let shared = Shared::new(opts)?;
    std::thread::scope(|s| {
        for _ in 0..shared.workers {
            s.spawn(|| worker(&shared));
        }
        let reply = Reply::Sink(sink.clone());
        for line in input.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            match dispatch_line(&shared, &line, &reply) {
                Dispatched::Nothing | Dispatched::Queued => {}
                Dispatched::Immediate { id, result } => write_response(&sink, &id, &result),
                Dispatched::Shutdown { id, result } => {
                    write_response(&sink, &id, &result);
                    break;
                }
            }
        }
        shared.queue.close();
    });
    Ok(())
}

/// Runs the service over stdin/stdout until EOF or a `shutdown` request.
pub fn serve_stdio(opts: &ServeOptions) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let sink: Sink = Arc::new(Mutex::new(Box::new(std::io::stdout())));
    serve_reader(opts, stdin.lock(), sink)
}

// ---------------------------------------------------------------------
// The TCP event loop

/// Poller token of the accept socket; connections get tokens from 1 up.
const LISTENER_TOKEN: usize = 0;

/// Cap on an unterminated NDJSON request line before the connection is
/// answered with a parse error and closed (HTTP limits live in
/// [`http`]).
const MAX_NDJSON_LINE: usize = 8 * 1024 * 1024;

/// How long a shutting-down server waits for clients to drain written
/// responses before force-closing them.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Protocol {
    /// First non-whitespace byte not seen yet.
    Unknown,
    Ndjson,
    Http,
}

struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// Pending response bytes (wire format), `out_pos` already written.
    out: Vec<u8>,
    out_pos: usize,
    protocol: Protocol,
    /// Next request sequence number to assign.
    next_seq: u64,
    /// Next sequence to release to `out` (HTTP ordering).
    next_release: u64,
    /// Completed-but-unreleased HTTP responses: seq → (wire bytes,
    /// keep-alive).
    held: BTreeMap<u64, (Vec<u8>, bool)>,
    /// seq → keep-alive decision recorded at parse time (HTTP only).
    meta: HashMap<u64, bool>,
    /// Queued jobs not yet completed.
    pending: u64,
    /// Peer closed its write half (EOF read).
    read_closed: bool,
    /// No further requests will be parsed; close once everything owed
    /// has been written.
    closing: bool,
    /// Unrecoverable socket error; drop immediately.
    dead: bool,
    interest: Interest,
}

impl Conn {
    fn new(stream: TcpStream, http_enabled: bool) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            protocol: if http_enabled {
                Protocol::Unknown
            } else {
                Protocol::Ndjson
            },
            next_seq: 0,
            next_release: 0,
            held: BTreeMap::new(),
            meta: HashMap::new(),
            pending: 0,
            read_closed: false,
            closing: false,
            dead: false,
            interest: Interest::READ,
        }
    }

    fn out_drained(&self) -> bool {
        self.out_pos == self.out.len()
    }

    /// True once the connection owes the peer nothing more and will
    /// produce nothing more.
    fn finished(&self) -> bool {
        (self.closing || self.read_closed)
            && self.pending == 0
            && self.held.is_empty()
            && self.out_drained()
    }

    /// Accepts a finished response (the NDJSON envelope line) for `seq`.
    fn complete(&mut self, seq: u64, line: String) {
        match self.protocol {
            Protocol::Http => {
                let keep = self.meta.remove(&seq).unwrap_or(false);
                let wire = http::response(200, line.as_bytes(), keep);
                self.held.insert(seq, (wire, keep));
                self.release();
            }
            // NDJSON responses are documented to arrive in any order.
            _ => self.out.extend_from_slice(line.as_bytes()),
        }
    }

    /// Queues a non-200 HTTP response for `seq` (framing or mapping
    /// errors); still released in request order.
    fn complete_http_error(&mut self, seq: u64, status: u16, body: &[u8], keep: bool) {
        let wire = http::response(status, body, keep);
        self.held.insert(seq, (wire, keep));
        self.release();
    }

    /// Moves in-order completed HTTP responses into the write buffer.
    fn release(&mut self) {
        while let Some((wire, keep)) = self.held.remove(&self.next_release) {
            self.out.extend_from_slice(&wire);
            self.next_release += 1;
            if !keep {
                self.closing = true;
                self.held.clear();
                self.meta.clear();
                break;
            }
        }
    }

    /// Nonblocking read until `WouldBlock`/EOF, then parse what arrived.
    fn on_readable(&mut self, shared: &Shared, token: usize, outstanding: &mut u64) {
        let mut tmp = [0u8; 16384];
        loop {
            match (&self.stream).read(&mut tmp) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.parse(shared, token, outstanding);
        // The NDJSON stream may legally end without a final newline.
        if self.read_closed && !self.closing && !self.buf.is_empty() {
            if let Protocol::Ndjson = self.protocol {
                let line = String::from_utf8_lossy(&self.buf).into_owned();
                self.buf.clear();
                self.dispatch_ndjson(shared, token, &line, outstanding);
            }
        }
    }

    fn parse(&mut self, shared: &Shared, token: usize, outstanding: &mut u64) {
        if self.protocol == Protocol::Unknown {
            match self
                .buf
                .iter()
                .find(|&&b| !matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
            {
                None => return,
                Some(&b'{') => self.protocol = Protocol::Ndjson,
                Some(_) => self.protocol = Protocol::Http,
            }
        }
        match self.protocol {
            Protocol::Ndjson => self.parse_ndjson(shared, token, outstanding),
            Protocol::Http => self.parse_http(shared, token, outstanding),
            Protocol::Unknown => {}
        }
    }

    fn dispatch_ndjson(
        &mut self,
        shared: &Shared,
        token: usize,
        line: &str,
        outstanding: &mut u64,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match dispatch_line(shared, line, &Reply::Loop { token, seq }) {
            Dispatched::Nothing => {}
            Dispatched::Immediate { id, result } => self.complete(seq, envelope(&id, &result)),
            Dispatched::Queued => {
                self.pending += 1;
                *outstanding += 1;
            }
            Dispatched::Shutdown { id, result } => {
                self.complete(seq, envelope(&id, &result));
                self.closing = true;
            }
        }
    }

    fn parse_ndjson(&mut self, shared: &Shared, token: usize, outstanding: &mut u64) {
        while !self.closing {
            let Some(pos) = self.buf.iter().position(|&b| b == b'\n') else {
                break;
            };
            let line = String::from_utf8_lossy(&self.buf[..pos]).into_owned();
            self.buf.drain(..=pos);
            self.dispatch_ndjson(shared, token, &line, outstanding);
        }
        if !self.closing && self.buf.len() > MAX_NDJSON_LINE {
            let e = EncodeError::parse(format!(
                "request line exceeds {MAX_NDJSON_LINE} bytes without a newline"
            ));
            let seq = self.next_seq;
            self.next_seq += 1;
            self.complete(seq, envelope("null", &failure_json(&e, None).render()));
            self.closing = true;
        }
    }

    fn parse_http(&mut self, shared: &Shared, token: usize, outstanding: &mut u64) {
        while !self.closing {
            match http::parse_request(&self.buf) {
                http::Step::Partial => break,
                http::Step::Malformed(fe) => {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.closing = true;
                    let body = http::framing_error_body(&fe);
                    self.complete_http_error(seq, fe.status, &body, false);
                    self.buf.clear();
                    break;
                }
                http::Step::Ready { request, consumed } => {
                    self.buf.drain(..consumed);
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let keep = request.keep_alive;
                    if !keep {
                        self.closing = true;
                    }
                    match http_request_line(&request) {
                        Ok(line) => {
                            self.meta.insert(seq, keep);
                            match dispatch_line(shared, &line, &Reply::Loop { token, seq }) {
                                Dispatched::Nothing => {
                                    // Unreachable (the mapping never
                                    // yields an empty line), but the seq
                                    // slot must be filled regardless.
                                    let e = EncodeError::parse("empty request");
                                    self.complete(
                                        seq,
                                        envelope("null", &failure_json(&e, None).render()),
                                    );
                                }
                                Dispatched::Immediate { id, result } => {
                                    self.complete(seq, envelope(&id, &result));
                                }
                                Dispatched::Queued => {
                                    self.pending += 1;
                                    *outstanding += 1;
                                }
                                Dispatched::Shutdown { id, result } => {
                                    self.complete(seq, envelope(&id, &result));
                                    self.closing = true;
                                }
                            }
                        }
                        Err(fe) => {
                            let body = http::framing_error_body(&fe);
                            self.complete_http_error(seq, fe.status, &body, keep);
                        }
                    }
                }
            }
        }
    }

    /// Nonblocking flush of the write buffer.
    fn flush_out(&mut self) {
        while self.out_pos < self.out.len() {
            match (&self.stream).write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.out_drained() {
            self.out.clear();
            self.out_pos = 0;
        }
    }
}

/// Maps an HTTP request onto one NDJSON request line:
///
/// * `POST` (any target) with a JSON body — the body *is* the request
///   object, exactly one per HTTP request.
/// * `GET /stats` — `{"op":"stats"}`.
/// * `GET /healthz` — `{"op":"stats"}` (liveness probes read any 200).
///
/// Anything else is a typed HTTP error.
fn http_request_line(req: &http::Request) -> Result<String, http::FramingError> {
    match req.method.as_str() {
        "POST" => {
            if req.body.is_empty() {
                return Err(http::FramingError {
                    status: 400,
                    message: "POST body must contain one JSON request object".to_string(),
                });
            }
            match std::str::from_utf8(&req.body) {
                Ok(s) => Ok(s.to_string()),
                Err(_) => Err(http::FramingError {
                    status: 400,
                    message: "POST body is not valid UTF-8".to_string(),
                }),
            }
        }
        "GET" => match req.target.as_str() {
            "/stats" | "/healthz" => Ok("{\"op\":\"stats\"}".to_string()),
            other => Err(http::FramingError {
                status: 404,
                message: format!("no such resource '{other}'; POST requests to /"),
            }),
        },
        other => Err(http::FramingError {
            status: 405,
            message: format!("method {other} not supported; use POST or GET /stats"),
        }),
    }
}

/// Runs the service on a loopback TCP port (`0` picks an ephemeral one).
/// Prints `ioenc serve: listening on 127.0.0.1:<port>` to stderr once
/// bound — test harnesses learn the ephemeral port from that line — and
/// returns after a `shutdown` request, once accepted jobs are answered.
pub fn serve_tcp(opts: &ServeOptions, port: u16) -> std::io::Result<()> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let local = listener.local_addr()?;
    eprintln!("ioenc serve: listening on {local}");
    serve_listener(opts, listener)
}

/// [`serve_tcp`] on an already-bound listener (used by tests to avoid
/// port races): the readiness-driven event loop plus the worker pool.
fn serve_listener(opts: &ServeOptions, listener: TcpListener) -> std::io::Result<()> {
    let shared = Shared::new(opts)?;
    let poller = Poller::new()?;
    poller::set_nonblocking_listener(&listener)?;
    poller.add_listener(&listener, LISTENER_TOKEN)?;
    *shared.loop_waker.lock().unwrap_or_else(|p| p.into_inner()) = Some(poller.waker());
    std::thread::scope(|s| {
        for _ in 0..shared.workers {
            s.spawn(|| worker(&shared));
        }
        event_loop(&shared, opts, &poller, &listener);
        // Idempotent: the loop already closed it on the shutdown path,
        // but an error exit must still let the workers drain and stop.
        shared.queue.close();
    });
    Ok(())
}

fn event_loop(shared: &Shared, opts: &ServeOptions, poller: &Poller, listener: &TcpListener) {
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut events = Events::new();
    let mut next_token = LISTENER_TOKEN + 1;
    // Queued jobs not yet completed, across all connections — including
    // ones whose connection has since died (their completions still
    // arrive and must be consumed).
    let mut outstanding: u64 = 0;
    let mut shutting = false;
    let mut drain_deadline = Instant::now();

    loop {
        if poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .is_err()
        {
            break;
        }

        // Worker completions first: they only ever add to write buffers.
        for c in shared.take_completions() {
            outstanding = outstanding.saturating_sub(1);
            if let Some(conn) = conns.get_mut(&c.token) {
                conn.pending = conn.pending.saturating_sub(1);
                conn.complete(c.seq, c.line);
            }
        }

        let mut accept_ready = false;
        for ev in events.iter() {
            match ev.token {
                WAKER_TOKEN => {}
                LISTENER_TOKEN => accept_ready = true,
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if ev.readable && !conn.dead {
                            conn.on_readable(shared, token, &mut outstanding);
                        }
                        if ev.closed && !ev.readable {
                            // Hard error/hangup with nothing left to
                            // read: the peer is gone.
                            conn.dead = true;
                        }
                    }
                }
            }
        }

        if accept_ready && !shutting {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if poller::set_nonblocking_stream(&stream).is_err() {
                            continue;
                        }
                        let token = next_token;
                        next_token += 1;
                        if poller.add_stream(&stream, token, Interest::READ).is_ok() {
                            conns.insert(token, Conn::new(stream, opts.http));
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // Flush write buffers, retire finished connections, keep
        // everyone's poller interest in sync with what they owe.
        conns.retain(|&token, conn| {
            if !conn.dead {
                conn.flush_out();
            }
            if conn.dead || conn.finished() {
                let _ = poller.remove_stream(&conn.stream);
                poller.forget(token);
                return false;
            }
            let want = Interest {
                readable: !(conn.closing || conn.read_closed),
                writable: !conn.out_drained(),
            };
            if want != conn.interest && poller.rearm_stream(&conn.stream, token, want).is_ok() {
                conn.interest = want;
            }
            true
        });

        if shared.shutdown.load(Ordering::SeqCst) && !shutting {
            shutting = true;
            // No new connections, no new jobs; workers drain the queue
            // and the loop keeps running to deliver their completions.
            let _ = poller.remove_listener(listener);
            poller.forget(LISTENER_TOKEN);
            shared.queue.close();
            drain_deadline = Instant::now() + DRAIN_GRACE;
        }
        if shutting {
            let busy = outstanding > 0
                || conns
                    .values()
                    .any(|c| c.pending > 0 || !c.held.is_empty() || !c.out_drained());
            if !busy || Instant::now() > drain_deadline {
                break;
            }
        }
    }
    shared.queue.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const SECTION1: &str = "symbols: a b c d\n(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d\n";

    fn serve_lines(opts: &ServeOptions, requests: &[String]) -> Vec<String> {
        let input = requests.join("\n") + "\n";
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink: Sink = Arc::new(Mutex::new(Box::new(SharedBuf(buf.clone()))));
        serve_reader(opts, input.as_bytes(), sink).unwrap();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        out.lines().map(str::to_string).collect()
    }

    fn encode_request(id: u64, text: &str) -> String {
        Json::obj()
            .field("id", id)
            .field("op", "encode")
            .field("text", text)
            .render()
    }

    #[test]
    fn encode_stats_and_shutdown_round_trip() {
        let reqs = vec![
            encode_request(1, SECTION1),
            encode_request(2, SECTION1),
            Json::obj().field("id", 3u64).field("op", "stats").render(),
            Json::obj()
                .field("id", 4u64)
                .field("op", "shutdown")
                .render(),
        ];
        let lines = serve_lines(&ServeOptions::new().with_workers(2), &reqs);
        assert_eq!(lines.len(), 4);
        let by_id = |want: u64| {
            lines
                .iter()
                .find(|l| Json::parse(l).unwrap().get("id").and_then(Json::as_u64) == Some(want))
                .cloned()
                .unwrap()
        };
        let r1 = Json::parse(&by_id(1)).unwrap();
        let ok = r1
            .get("result")
            .and_then(|r| r.get("ok"))
            .and_then(Json::as_bool);
        assert_eq!(ok, Some(true));
        // Identical requests produce byte-identical result objects.
        assert_eq!(
            by_id(1).replace("\"id\":1", ""),
            by_id(2).replace("\"id\":2", "")
        );
        let shut = Json::parse(&by_id(4)).unwrap();
        assert_eq!(
            shut.get("result")
                .and_then(|r| r.get("shutting_down"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn responses_carry_the_protocol_version_and_gate_requests_on_it() {
        let reqs = vec![
            encode_request(1, SECTION1),
            // Explicitly pinned current version: accepted.
            Json::obj()
                .field("id", 2u64)
                .field("v", 1u64)
                .field("op", "stats")
                .render(),
            // Unknown version: typed protocol error, request not executed.
            Json::obj()
                .field("id", 3u64)
                .field("v", 99u64)
                .field("op", "stats")
                .render(),
        ];
        let lines = serve_lines(&ServeOptions::new().with_workers(1), &reqs);
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("v").and_then(Json::as_u64), Some(1), "{line}");
        }
        let bad = lines.iter().find(|l| l.contains("\"id\":3")).unwrap();
        assert!(bad.contains("\"class\":\"protocol\""), "{bad}");
        assert!(bad.contains("speaks v1"), "{bad}");
    }

    #[test]
    fn session_ops_round_trip_through_the_dispatcher() {
        let base = "symbols: a b c d\n(a,b)\n(c,d)\n";
        let reqs = vec![
            Json::obj()
                .field("id", 1u64)
                .field("op", "open")
                .field("text", base)
                .render(),
            Json::obj()
                .field("id", 2u64)
                .field("op", "delta")
                .field("session", 1u64)
                .field("add", vec![Json::from("(b,c)")])
                .render(),
            Json::obj().field("id", 3u64).field("op", "stats").render(),
            Json::obj()
                .field("id", 4u64)
                .field("op", "close")
                .field("session", 1u64)
                .render(),
        ];
        let lines = serve_lines(&ServeOptions::new().with_workers(1), &reqs);
        assert_eq!(lines.len(), 4);
        let result = |want: u64| {
            lines
                .iter()
                .map(|l| Json::parse(l).unwrap())
                .find(|j| j.get("id").and_then(Json::as_u64) == Some(want))
                .and_then(|j| j.get("result").cloned())
                .unwrap()
        };
        let opened = result(1);
        assert_eq!(opened.get("session").and_then(Json::as_u64), Some(1));
        let applied = result(2);
        assert_eq!(
            applied
                .get("reuse")
                .and_then(|r| r.get("incremental"))
                .and_then(Json::as_bool),
            Some(true)
        );
        // Sessions are answered inline and never consult the result cache.
        let stats = result(3);
        assert_eq!(
            stats
                .get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            stats
                .get("cache")
                .and_then(|c| c.get("misses"))
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(stats.get("sessions").and_then(Json::as_u64), Some(1));
        assert_eq!(result(4).get("closed").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn malformed_lines_get_typed_parse_errors_not_panics() {
        let reqs = vec![
            "this is not json".to_string(),
            "{\"id\":9,\"op\":\"encode\"}".to_string(),
            "{\"id\":10,\"op\":\"frobnicate\"}".to_string(),
            "{\"id\":11,\"op\":\"encode\",\"text\":\"no header\"}".to_string(),
        ];
        let lines = serve_lines(&ServeOptions::new().with_workers(1), &reqs);
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let v = Json::parse(line).unwrap();
            let err = v
                .get("result")
                .and_then(|r| r.get("error"))
                .and_then(|e| e.get("class"))
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            assert_eq!(err, "parse", "{line}");
        }
    }

    #[test]
    fn overload_sheds_with_an_explicit_response() {
        // One worker, one queue slot, no cache: burst enough requests
        // that at least one is shed (the reader enqueues much faster
        // than a solve completes).
        let mut reqs: Vec<String> = (0..12).map(|i| encode_request(i, SECTION1)).collect();
        reqs.push(Json::obj().field("id", 99u64).field("op", "stats").render());
        let opts = ServeOptions::new()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_cache_entries(0);
        let lines = serve_lines(&opts, &reqs);
        assert_eq!(lines.len(), 13);
        let shed = lines
            .iter()
            .filter(|l| l.contains("\"class\":\"overloaded\""))
            .count();
        assert!(shed > 0, "expected at least one shed response");
        let stats_line = lines.iter().find(|l| l.contains("\"queue\"")).unwrap();
        let v = Json::parse(stats_line).unwrap();
        let reported = v
            .get("result")
            .and_then(|r| r.get("queue"))
            .and_then(|q| q.get("shed"))
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(reported as usize, shed);
    }

    fn connect_with_retry(port: u16) -> TcpStream {
        for _ in 0..100 {
            if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
                s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                return s;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("server did not accept within 1s");
    }

    #[test]
    fn tcp_round_trip_with_ephemeral_port() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let opts = ServeOptions::new().with_workers(2);
        let server = std::thread::spawn(move || serve_listener(&opts, listener));
        let stream = connect_with_retry(port);
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{}", encode_request(1, SECTION1)).unwrap();
        writeln!(
            writer,
            "{}",
            Json::obj()
                .field("id", 2u64)
                .field("op", "shutdown")
                .render()
        )
        .unwrap();
        let reader = BufReader::new(stream);
        let lines: Vec<String> = reader.lines().map_while(Result::ok).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().any(|l| l.contains("\"ok\":true")));
        server.join().unwrap().unwrap();
    }

    /// Reads one HTTP/1.1 response (status, body) off a blocking stream.
    fn read_http_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn http_and_ndjson_share_the_port() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let opts = ServeOptions::new().with_workers(2).with_http(true);
        let server = std::thread::spawn(move || serve_listener(&opts, listener));

        // NDJSON connection (auto-detected from the '{' first byte).
        let ndjson = connect_with_retry(port);
        let mut w = ndjson.try_clone().unwrap();
        writeln!(w, "{}", encode_request(1, SECTION1)).unwrap();
        let mut r = BufReader::new(ndjson);
        let mut ndjson_line = String::new();
        r.read_line(&mut ndjson_line).unwrap();
        assert!(ndjson_line.contains("\"ok\":true"), "{ndjson_line}");
        drop((r, w));

        // HTTP connection: two pipelined POSTs answered in order, then
        // GET /stats on the same keep-alive connection.
        let httpc = connect_with_retry(port);
        let mut w = httpc.try_clone().unwrap();
        let body1 = encode_request(10, SECTION1);
        let body2 = encode_request(11, SECTION1);
        let mut pipelined = Vec::new();
        for body in [&body1, &body2] {
            pipelined.extend_from_slice(
                format!(
                    "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            );
        }
        pipelined.extend_from_slice(b"GET /stats HTTP/1.1\r\n\r\n");
        w.write_all(&pipelined).unwrap();
        let mut r = BufReader::new(httpc);
        let (s1, b1) = read_http_response(&mut r);
        let (s2, b2) = read_http_response(&mut r);
        let (s3, b3) = read_http_response(&mut r);
        assert_eq!((s1, s2, s3), (200, 200, 200));
        assert!(b1.contains("\"id\":10"), "responses in request order: {b1}");
        assert!(b2.contains("\"id\":11"), "responses in request order: {b2}");
        assert!(b3.contains("\"queue\""), "{b3}");
        // The HTTP body is the same envelope the NDJSON protocol sends.
        assert_eq!(
            b1.replace("\"id\":10", "\"id\":1"),
            ndjson_line,
            "HTTP and NDJSON responses are byte-identical"
        );

        // Unknown GET target and bad method get typed errors.
        let mut w2 = r.get_ref().try_clone().unwrap();
        w2.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
        let (s4, b4) = read_http_response(&mut r);
        assert_eq!(s4, 404);
        assert!(b4.contains("\"class\":\"http\""), "{b4}");

        // Shut down over HTTP.
        w2.write_all(
            format!(
                "POST / HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
                "{\"id\":99,\"op\":\"shutdown\"}".len(),
                "{\"id\":99,\"op\":\"shutdown\"}"
            )
            .as_bytes(),
        )
        .unwrap();
        let (s5, b5) = read_http_response(&mut r);
        assert_eq!(s5, 200);
        assert!(b5.contains("\"shutting_down\":true"), "{b5}");
        server.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_http_gets_a_typed_close_not_a_hang() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let opts = ServeOptions::new().with_workers(1).with_http(true);
        let server = std::thread::spawn(move || serve_listener(&opts, listener));

        let bad = connect_with_retry(port);
        let mut w = bad.try_clone().unwrap();
        // Three tokens but a nonsense version: typed 505, then close.
        w.write_all(b"NONSENSE REQUEST LINE\r\n\r\n").unwrap();
        let mut r = BufReader::new(bad);
        let (status, body) = read_http_response(&mut r);
        assert_eq!(status, 505);
        assert!(body.contains("\"class\":\"http\""), "{body}");
        // The connection is closed afterwards.
        let mut probe = String::new();
        assert_eq!(r.read_line(&mut probe).unwrap(), 0, "connection not closed");

        let fin = connect_with_retry(port);
        let mut w = fin.try_clone().unwrap();
        writeln!(w, "{{\"id\":1,\"op\":\"shutdown\"}}").unwrap();
        let mut r = BufReader::new(fin);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("\"shutting_down\":true"), "{line}");
        server.join().unwrap().unwrap();
    }
}
