//! Server-side incremental sessions: the `open` / `delta` / `close`
//! NDJSON operations, backed by [`ioenc_core::Session`].
//!
//! A session holds a constraint set server-side so a client can re-solve
//! after small edits without resending (or re-solving) the whole set. The
//! response codes are bit-identical to a fresh `encode` of the edited
//! text — that is [`Session`]'s contract — so a client may freely mix
//! one-shot and session requests.
//!
//! Design points:
//!
//! * **Sessions never touch the result cache.** The cache is keyed by
//!   canonical form and replays rendered outcomes; session responses
//!   carry reuse accounting that is true for *this* session's history
//!   only, so caching them would replay lies. The underlying solves stay
//!   deterministic, which keeps responses reproducible anyway.
//! * **Session operations run inline on the connection thread**, not on
//!   the worker pool: each operation mutates the session, so per-session
//!   ordering is part of the protocol. Operations on *different* sessions
//!   still serialize through the registry lock — sessions are a
//!   low-latency edit loop, not a batch throughput path.
//! * **Deadline-budgeted sessions stay correct**: [`Session`] only builds
//!   incremental state under an unlimited budget, so a deadline-truncated
//!   solve can never seed state that a later delta would reuse (the same
//!   reason deadline requests bypass the result cache).

use crate::exec::{failure_json, parse_constraint_text, work_units_json};
use ioenc_core::json::Json;
use ioenc_core::{ConstraintSet, Delta, EncodeError, Session, SessionOutcome, SolutionDetail};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The live sessions of one server instance, addressed by server-assigned
/// numeric ids.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    next: AtomicU64,
    sessions: Mutex<HashMap<u64, Session>>,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SessionRegistry::default()
    }

    /// The number of live sessions.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Session>> {
        self.sessions.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Handles an `open` request: parse `text`, configure the solver from
    /// the spec fields, solve, and return the result with a fresh
    /// `session` id. The session is created (and survives) even when the
    /// initial solve fails — say, the set is infeasible — so the client
    /// can repair it with deltas.
    pub fn open(&self, req: &Json) -> Json {
        match self.try_open(req) {
            Ok((sid, cs, outcome)) => render_outcome(sid, &cs, &outcome),
            Err(e) => failure_json(&e, None),
        }
    }

    fn try_open(
        &self,
        req: &Json,
    ) -> Result<(u64, ConstraintSet, Result<SessionOutcome, EncodeError>), EncodeError> {
        let (text, spec) = crate::server::parse_encode_request(req)?;
        let cs = parse_constraint_text(&text)?;
        let solver = spec.solver(None)?;
        let mut session = Session::open(cs).with_solver(solver);
        let outcome = session.solve();
        let sid = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let cs = session.constraints().clone();
        self.lock().insert(sid, session);
        Ok((sid, cs, outcome))
    }

    /// Handles a `delta` request: `{"session":N,"add":[…],"remove":[…]}`.
    /// A malformed delta (bad line, unmatched removal) leaves the session
    /// untouched; a well-formed delta that makes the set unsolvable
    /// commits the edit and reports the solve error, exactly like
    /// [`Session::apply`].
    pub fn delta(&self, req: &Json) -> Json {
        let sid = match req.get("session").and_then(Json::as_u64) {
            Some(sid) => sid,
            None => {
                return failure_json(
                    &EncodeError::parse("delta request needs a numeric 'session' field"),
                    None,
                )
            }
        };
        let delta = match parse_delta(req) {
            Ok(d) => d,
            Err(e) => return failure_json(&e, None),
        };
        let mut sessions = self.lock();
        let session = match sessions.get_mut(&sid) {
            Some(s) => s,
            None => {
                return failure_json(&EncodeError::parse(format!("no open session {sid}")), None)
            }
        };
        let outcome = session.apply(&delta);
        let cs = session.constraints().clone();
        drop(sessions);
        render_outcome(sid, &cs, &outcome)
    }

    /// Handles a `close` request: drops the session and acknowledges.
    pub fn close(&self, req: &Json) -> Json {
        let sid = match req.get("session").and_then(Json::as_u64) {
            Some(sid) => sid,
            None => {
                return failure_json(
                    &EncodeError::parse("close request needs a numeric 'session' field"),
                    None,
                )
            }
        };
        match self.lock().remove(&sid) {
            Some(_) => Json::obj()
                .field("ok", true)
                .field("session", sid)
                .field("closed", true),
            None => failure_json(&EncodeError::parse(format!("no open session {sid}")), None),
        }
    }
}

fn parse_delta(req: &Json) -> Result<Delta, EncodeError> {
    let mut delta = Delta::new();
    for (key, kind) in [("add", "addition"), ("remove", "removal")] {
        match req.get(key) {
            None | Some(Json::Null) => {}
            Some(v) => {
                let items = v.as_arr().ok_or_else(|| {
                    EncodeError::parse(format!("'{key}' must be an array of constraint lines"))
                })?;
                for item in items {
                    let line = item.as_str().ok_or_else(|| {
                        EncodeError::parse(format!("each {kind} must be a string"))
                    })?;
                    delta = match key {
                        "add" => delta.add(line),
                        _ => delta.remove(line),
                    };
                }
            }
        }
    }
    Ok(delta)
}

/// Renders a session solve result. Success mirrors the one-shot result
/// shape (`mode`/`width`/`codes`/`stats`) minus the canonical `key` —
/// sessions solve the caller's set directly — plus the `session` id and
/// the incremental `reuse` accounting. Errors mirror the one-shot failure
/// shape plus the `session` id.
fn render_outcome(
    sid: u64,
    cs: &ConstraintSet,
    outcome: &Result<SessionOutcome, EncodeError>,
) -> Json {
    let out = match outcome {
        Ok(out) => out,
        Err(e) => return failure_json(e, Some(cs)).field("session", sid),
    };
    let mut obj = Json::obj().field("ok", true).field("session", sid);
    obj = match &out.solution.detail {
        SolutionDetail::Exact { optimal } => obj.field("mode", "exact").field("optimal", *optimal),
        SolutionDetail::Bounded { cost } => obj.field("mode", "bounded").field("cost", *cost),
        SolutionDetail::Heuristic { converged } => obj
            .field("mode", "heuristic")
            .field("converged", *converged),
        SolutionDetail::Auto { rung, optimal, .. } => obj
            .field("mode", "auto")
            .field("rung", rung.to_string())
            .field("optimal", *optimal),
    };
    let width = out.solution.encoding.width();
    let codes: Vec<Json> = (0..cs.num_symbols())
        .map(|s| {
            Json::obj().field("symbol", cs.name(s)).field(
                "code",
                format!("{:0width$b}", out.solution.encoding.codes()[s]),
            )
        })
        .collect();
    obj.field("width", width)
        .field("codes", codes)
        .field("stats", work_units_json(&out.solution.stats.work_units()))
        .field(
            "reuse",
            Json::obj()
                .field("incremental", out.reuse.incremental)
                .field("delta_size", out.reuse.delta_size)
                .field("raises_reused", out.reuse.raises_reused)
                .field("raises_recomputed", out.reuse.raises_recomputed)
                .field("raises_fresh", out.reuse.raises_fresh)
                .field("cliques", out.reuse.cliques)
                .field("cover_replayed", out.reuse.cover_replayed),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::EncodeSpec;

    fn open_req(text: &str) -> Json {
        Json::obj().field("op", "open").field("text", text)
    }

    const BASE: &str = "symbols: a b c d\n(a,b)\n(c,d)\na>c\n";

    #[test]
    fn open_delta_close_round_trip() {
        let reg = SessionRegistry::new();
        let opened = reg.open(&open_req(BASE));
        assert_eq!(opened.get("ok").and_then(Json::as_bool), Some(true));
        let sid = opened.get("session").and_then(Json::as_u64).unwrap();
        assert_eq!(reg.len(), 1);

        let delta = Json::obj()
            .field("op", "delta")
            .field("session", sid)
            .field("add", vec![Json::from("(b,c)")])
            .field("remove", vec![Json::from("a>c")]);
        let applied = reg.delta(&delta);
        assert_eq!(applied.get("ok").and_then(Json::as_bool), Some(true));
        let reuse = applied.get("reuse").unwrap();
        assert_eq!(reuse.get("incremental").and_then(Json::as_bool), Some(true));
        assert_eq!(reuse.get("delta_size").and_then(Json::as_u64), Some(2));

        // Bit-identity with a fresh one-shot solve of the edited text.
        let edited = "symbols: a b c d\n(a,b)\n(c,d)\n(b,c)\n";
        let fresh = crate::exec::outcome(edited, &EncodeSpec::default(), None, None);
        let fresh = Json::parse(&fresh.json).unwrap();
        assert_eq!(applied.get("codes"), fresh.get("codes"));
        assert_eq!(applied.get("width"), fresh.get("width"));

        let closed = reg.close(&Json::obj().field("op", "close").field("session", sid));
        assert_eq!(closed.get("closed").and_then(Json::as_bool), Some(true));
        assert!(reg.is_empty());
        let gone = reg.delta(&Json::obj().field("session", sid));
        assert_eq!(gone.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn open_survives_an_infeasible_set_for_repair() {
        let reg = SessionRegistry::new();
        let bad = "symbols: a b\na>b\nb>a\n";
        let opened = reg.open(&open_req(bad));
        assert_eq!(opened.get("ok").and_then(Json::as_bool), Some(false));
        let sid = opened.get("session").and_then(Json::as_u64).unwrap();
        assert_eq!(reg.len(), 1, "failed open still creates the session");
        let repaired = reg.delta(
            &Json::obj()
                .field("session", sid)
                .field("remove", vec![Json::from("b>a")]),
        );
        assert_eq!(
            repaired.get("ok").and_then(Json::as_bool),
            Some(true),
            "{repaired:?}"
        );
    }

    #[test]
    fn malformed_deltas_are_typed_and_leave_the_session_alone() {
        let reg = SessionRegistry::new();
        let opened = reg.open(&open_req(BASE));
        let sid = opened.get("session").and_then(Json::as_u64).unwrap();
        for bad in [
            Json::obj()
                .field("session", sid)
                .field("add", "not-an-array"),
            Json::obj()
                .field("session", sid)
                .field("remove", vec![Json::from("(z,q)")]),
            Json::obj().field("add", vec![Json::from("(a,b)")]),
        ] {
            let r = reg.delta(&bad);
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{r:?}");
            assert_eq!(
                r.get("error")
                    .and_then(|e| e.get("class"))
                    .and_then(Json::as_str),
                Some("parse"),
                "{r:?}"
            );
        }
        // The session still answers an empty delta with the base solve.
        let ok = reg.delta(&Json::obj().field("session", sid));
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn deadline_sessions_never_go_incremental() {
        let reg = SessionRegistry::new();
        let mut req = open_req(BASE);
        req = req.field("deadline_ms", 60_000u64);
        let opened = reg.open(&req);
        assert_eq!(opened.get("ok").and_then(Json::as_bool), Some(true));
        let sid = opened.get("session").and_then(Json::as_u64).unwrap();
        assert_eq!(
            opened
                .get("reuse")
                .and_then(|r| r.get("incremental"))
                .and_then(Json::as_bool),
            Some(false),
            "deadline-budgeted solve must not build incremental state"
        );
        let applied = reg.delta(
            &Json::obj()
                .field("session", sid)
                .field("add", vec![Json::from("(b,c)")]),
        );
        assert_eq!(
            applied
                .get("reuse")
                .and_then(|r| r.get("incremental"))
                .and_then(Json::as_bool),
            Some(false),
            "deltas under a deadline budget must re-solve from scratch"
        );
    }
}
