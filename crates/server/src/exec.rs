//! The shared encode pipeline: parse → canonicalize → solve → restore →
//! render.
//!
//! Both `ioenc encode --json` and every `serve` worker run [`outcome`],
//! so their bytes agree by construction. The pipeline always solves the
//! *canonical* form of the request (see [`canonical_form`]) and restores
//! the codes to the caller's symbol order afterwards; that is what makes
//! a cache hit for a symbol-permuted duplicate byte-identical to the
//! fresh solve the permuted spelling would have gotten on its own.
//!
//! Determinism contract: the rendered JSON contains only
//! schedule-independent data — symbol names, codes, [`WorkUnits`], mode
//! detail and the canonical key. Wall-clock timings and thread counts
//! stay on stderr (the CLI's human output), never in the JSON.

use crate::cache::{CachedOutcome, ResultCache};
use ioenc_core::json::Json;
use ioenc_core::lint::{lint, LintOptions};
use ioenc_core::{
    canonical_form, check_feasible, Budget, CancelToken, CanonicalForm, ConstraintSet,
    CostFunction, EncodeError, Encoding, Parallelism, Solution, SolutionDetail, Solver, SolverMode,
    SolverStats, WorkUnits,
};

/// Which solver answers the request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// Exact minimum-length encoding (Theorem 6.2).
    Exact {
        /// Prime-generation cap (`--prime-cap`); `None` for the default.
        prime_cap: Option<usize>,
    },
    /// Bounded-length heuristic encoding (Section 7.1).
    Heuristic {
        /// Code length (`--bits`); `None` lets the heuristic pick.
        bits: Option<usize>,
        /// The cost function to minimize.
        cost: CostFunction,
    },
    /// The exact → bounded → heuristic degradation ladder
    /// ([`SolverMode::Auto`]); requires at least one budget.
    Auto,
}

/// A fully-resolved encode request: mode, budgets and parallelism.
///
/// The JSON outcome is independent of `parallelism` (and of whether a
/// deadline fired between identical runs is the *caller's* concern —
/// deadline-budgeted requests bypass the result cache entirely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeSpec {
    /// Solver mode.
    pub mode: Mode,
    /// `--max-primes`: cap on prime encoding-dichotomies.
    pub max_primes: Option<usize>,
    /// `--max-nodes`: cap on covering branch-and-bound nodes.
    pub max_nodes: Option<u64>,
    /// `--max-evals`: cap on cost-function evaluations.
    pub max_evals: Option<u64>,
    /// `--max-ps-steps`: cap on prime-generation `ps` steps.
    pub max_ps_steps: Option<u64>,
    /// `--deadline-ms`: wall-clock deadline. Disables caching.
    pub deadline_ms: Option<u64>,
    /// Worker parallelism for the solve (not part of the fingerprint:
    /// results are bit-identical across thread counts).
    pub parallelism: Parallelism,
}

impl Default for EncodeSpec {
    fn default() -> Self {
        EncodeSpec {
            mode: Mode::Exact { prime_cap: None },
            max_primes: None,
            max_nodes: None,
            max_evals: None,
            max_ps_steps: None,
            deadline_ms: None,
            parallelism: Parallelism::Off,
        }
    }
}

/// The NDJSON protocol version this server speaks. Every response carries
/// it as a top-level `"v"` field; requests may pin it with their own `"v"`
/// and are rejected with a typed `protocol` error on a mismatch.
pub const PROTOCOL_VERSION: u64 = 1;

fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    }
}

/// The lowercase name of a cost function (stable; used in fingerprints
/// and request parsing).
pub fn cost_label(cost: CostFunction) -> &'static str {
    match cost {
        CostFunction::Violations => "violations",
        CostFunction::Cubes => "cubes",
        CostFunction::Literals => "literals",
    }
}

impl EncodeSpec {
    /// The deterministic cache fingerprint: the protocol version, the
    /// mode, and every budget knob that can change the result. The
    /// version prefix keeps entries written by one protocol generation
    /// from answering another's requests across an upgrade. The deadline
    /// is deliberately absent — deadline-budgeted requests never consult
    /// the cache (see [`EncodeSpec::cacheable`]) — and so is
    /// `parallelism`, because results are bit-identical across thread
    /// counts.
    pub fn fingerprint(&self) -> String {
        let mode = match &self.mode {
            Mode::Exact { prime_cap } => format!("exact:cap={}", opt(prime_cap)),
            Mode::Heuristic { bits, cost } => {
                format!("heuristic:bits={}:cost={}", opt(bits), cost_label(*cost))
            }
            Mode::Auto => "auto".to_string(),
        };
        format!(
            "v{PROTOCOL_VERSION};{mode};primes={};nodes={};evals={};ps={}",
            opt(&self.max_primes),
            opt(&self.max_nodes),
            opt(&self.max_evals),
            opt(&self.max_ps_steps),
        )
    }

    /// Whether this request's outcome may be stored in / served from the
    /// result cache: work-unit budgets are deterministic, a wall-clock
    /// deadline is not.
    pub fn cacheable(&self) -> bool {
        self.deadline_ms.is_none()
    }

    /// Builds the per-request [`Budget`] and reports whether any limit
    /// was set (auto mode requires one).
    fn budget(&self, cancel: Option<&CancelToken>) -> (Budget, bool) {
        let mut budget = Budget::unlimited();
        let mut any = false;
        if let Some(n) = self.max_primes {
            budget = budget.with_max_primes(n);
            any = true;
        }
        if let Some(n) = self.max_nodes {
            budget = budget.with_max_cover_nodes(n);
            any = true;
        }
        if let Some(n) = self.max_evals {
            budget = budget.with_max_evals(n);
            any = true;
        }
        if let Some(n) = self.max_ps_steps {
            budget = budget.with_max_ps_steps(n);
            any = true;
        }
        if let Some(ms) = self.deadline_ms {
            budget = budget.with_deadline(std::time::Duration::from_millis(ms));
            any = true;
        }
        if let Some(token) = cancel {
            budget = budget.with_cancel(token.clone());
        }
        (budget, any)
    }

    /// Builds the [`Solver`] this spec describes — shared by the one-shot
    /// pipeline and the session registry, so both solve identically.
    ///
    /// # Errors
    ///
    /// [`EncodeError::Limit`] for a zero prime cap or a budget-less auto
    /// request.
    pub fn solver(&self, cancel: Option<&CancelToken>) -> Result<Solver, EncodeError> {
        let (budget, any_budget) = self.budget(cancel);
        let mut solver = Solver::new().threads(self.parallelism).budget(budget);
        match &self.mode {
            Mode::Exact { prime_cap } => {
                if let Some(cap) = prime_cap {
                    if *cap == 0 {
                        return Err(EncodeError::limit("--prime-cap must be positive"));
                    }
                    solver = solver.prime_cap(*cap);
                }
                Ok(solver.mode(SolverMode::Exact))
            }
            Mode::Heuristic { bits, cost } => {
                solver = solver.cost(*cost);
                if let Some(bits) = bits {
                    solver = solver.code_length(*bits);
                }
                Ok(solver.mode(SolverMode::Heuristic))
            }
            Mode::Auto => {
                if !any_budget {
                    return Err(EncodeError::limit(
                        "--auto needs at least one budget: --max-primes, --max-nodes, \
                         --max-evals, --max-ps-steps or --deadline-ms",
                    ));
                }
                Ok(solver.mode(SolverMode::Auto))
            }
        }
    }
}

/// Mode-specific result detail, stable across cache hits and fresh
/// solves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModeOutcome {
    /// Exact pipeline result.
    Exact {
        /// Proven minimum length (false when the node limit was hit).
        optimal: bool,
    },
    /// Heuristic result.
    Heuristic {
        /// Whether the split/merge/select search reached its fixpoint.
        converged: bool,
    },
    /// Degradation-ladder result.
    Auto {
        /// The rung that answered (`"exact"`, `"bounded exact"`,
        /// `"heuristic"`).
        rung: String,
        /// Proven minimum length.
        optimal: bool,
    },
}

/// A solved request: the encoding in the *original* symbol order plus
/// everything needed to render both the JSON outcome and the CLI's
/// human-readable output.
#[derive(Debug, Clone)]
pub struct EncodeResult {
    /// The verified encoding, original symbol order.
    pub encoding: Encoding,
    /// Mode detail (`optimal` / `converged` / rung).
    pub mode: ModeOutcome,
    /// Deterministic work counters (the only stats that reach the JSON).
    pub work: WorkUnits,
    /// Whether the result came from the cache.
    pub from_cache: bool,
    /// Full stats render for stderr (`None` on cache hits).
    pub stats_text: Option<String>,
    /// Human diagnostics for stderr (auto-rung attempts; empty on hits).
    pub notes: Vec<String>,
}

/// Parses the `symbols:`-headed constraint file format. The header line
/// is replaced by a blank line (not removed) so that the spans the parser
/// attaches keep pointing at the original text's line numbers.
pub fn parse_constraint_text(text: &str) -> Result<ConstraintSet, EncodeError> {
    let mut names: Option<Vec<&str>> = None;
    let mut body = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("symbols:") {
            if names.is_none() {
                names = Some(rest.split_whitespace().collect());
                body.push('\n');
                continue;
            }
        }
        body.push_str(line);
        body.push('\n');
    }
    let names = names.ok_or_else(|| EncodeError::parse("missing 'symbols: …' header line"))?;
    ConstraintSet::parse(&names, &body)
}

/// Rebuilds an infeasibility error against the *original* constraint
/// set, so the attached lint report's constraint references and source
/// spans point at the caller's spelling rather than the canonical one.
fn original_infeasible(cs: &ConstraintSet) -> EncodeError {
    let feas = check_feasible(cs);
    let report = lint(cs, &LintOptions::new());
    EncodeError::Infeasible {
        uncovered: feas.uncovered,
        explanation: Some(Box::new(report)),
    }
}

/// Runs the requested solver on `set` (which may be the canonical set or,
/// on the verify-fallback path, the original one).
fn run_mode(
    set: &ConstraintSet,
    spec: &EncodeSpec,
    cancel: Option<&CancelToken>,
) -> Result<(Encoding, ModeOutcome, SolverStats, Vec<String>), EncodeError> {
    let solver = spec.solver(cancel)?;
    let Solution {
        encoding,
        stats,
        detail,
    } = solver.solve(set)?;
    let (mode, notes) = match detail {
        SolutionDetail::Exact { optimal } => (ModeOutcome::Exact { optimal }, Vec::new()),
        SolutionDetail::Heuristic { converged } => {
            (ModeOutcome::Heuristic { converged }, Vec::new())
        }
        SolutionDetail::Bounded { .. } => {
            // The spec grammar never selects bounded mode directly; it only
            // runs as an auto-ladder rung.
            return Err(EncodeError::limit("bounded mode is not a serve mode"));
        }
        SolutionDetail::Auto {
            rung,
            optimal,
            attempts,
            reused_raised,
        } => {
            let mut notes = Vec::new();
            for a in &attempts {
                match &a.error {
                    Some(e) => notes.push(format!("{} rung fell short: {e}", a.rung)),
                    None => notes.push(format!(
                        "{} rung fell short: best encoding still violated constraints",
                        a.rung
                    )),
                }
            }
            if reused_raised {
                notes.push("fallback reused the exact rung's raised dichotomies".to_string());
            }
            (
                ModeOutcome::Auto {
                    rung: rung.to_string(),
                    optimal,
                },
                notes,
            )
        }
    };
    Ok((encoding, mode, stats, notes))
}

/// Solves `cs` without consulting any cache: solve the canonical set,
/// restore the codes to the original symbol order, and verify them
/// against the original set. If the restored encoding somehow violates
/// the original constraints (a canonicalization bug), the request is
/// re-solved directly on the original set — slower, never wrong. An
/// infeasibility verdict is always rebuilt against the original set so
/// lint spans point at the caller's constraints.
pub fn solve_fresh(
    cs: &ConstraintSet,
    form: &CanonicalForm,
    spec: &EncodeSpec,
    cancel: Option<&CancelToken>,
) -> Result<EncodeResult, EncodeError> {
    let result = run_mode(&form.set, spec, cancel).map_err(|e| match e {
        EncodeError::Infeasible { .. } => original_infeasible(cs),
        other => other,
    })?;
    let (canon_encoding, mode, stats, notes) = result;
    let restored = form.restore_encoding(&canon_encoding);
    if restored.verify(cs).is_empty() {
        return Ok(EncodeResult {
            encoding: restored,
            mode,
            work: stats.work_units(),
            from_cache: false,
            stats_text: Some(stats.render()),
            notes,
        });
    }
    // Canonicalization bug: fall back to solving the original set.
    let (encoding, mode, stats, notes) = run_mode(cs, spec, cancel)?;
    Ok(EncodeResult {
        encoding,
        mode,
        work: stats.work_units(),
        from_cache: false,
        stats_text: Some(stats.render()),
        notes,
    })
}

pub(crate) fn work_units_json(w: &WorkUnits) -> Json {
    Json::obj()
        .field("num_initial", w.num_initial)
        .field("num_primes", w.num_primes)
        .field("raise_attempts", w.raise_attempts)
        .field("evals", w.evals)
        .field("espresso_iters", w.espresso_iters)
        .field("ps_steps", w.ps_steps)
        .field("peak_terms", w.peak_terms)
        .field("cover_nodes", w.cover_nodes)
        .field("cover_prunes", w.cover_prunes)
        .field("cover_tasks", w.cover_tasks)
}

/// The success JSON for a solved request: `ok`, canonical `key`, mode
/// detail, `width`, per-symbol `codes` (binary strings, original symbol
/// order) and the deterministic work-unit `stats`.
pub fn result_json(cs: &ConstraintSet, form: &CanonicalForm, r: &EncodeResult) -> Json {
    let mut obj = Json::obj()
        .field("ok", true)
        .field("key", form.key.to_string());
    obj = match &r.mode {
        ModeOutcome::Exact { optimal } => obj.field("mode", "exact").field("optimal", *optimal),
        ModeOutcome::Heuristic { converged } => obj
            .field("mode", "heuristic")
            .field("converged", *converged),
        ModeOutcome::Auto { rung, optimal } => obj
            .field("mode", "auto")
            .field("rung", rung.as_str())
            .field("optimal", *optimal),
    };
    let width = r.encoding.width();
    let codes: Vec<Json> = (0..cs.num_symbols())
        .map(|s| {
            Json::obj()
                .field("symbol", cs.name(s))
                .field("code", format!("{:0width$b}", r.encoding.codes()[s]))
        })
        .collect();
    obj.field("width", width)
        .field("codes", codes)
        .field("stats", work_units_json(&r.work))
}

/// The failure JSON for a typed error: class, exit code, message and —
/// for infeasibility with an attached explanation — the embedded lint
/// report (origin-less, so serve and CLI bytes agree).
pub fn failure_json(err: &EncodeError, lint_cs: Option<&ConstraintSet>) -> Json {
    let mut e = Json::obj()
        .field("class", err.class())
        .field("exit_code", u64::from(err.exit_code()))
        .field("message", err.to_string());
    if let (
        EncodeError::Infeasible {
            explanation: Some(report),
            ..
        },
        Some(cs),
    ) = (err, lint_cs)
    {
        e = e.field("lint", report.to_json(cs, None));
    }
    Json::obj().field("ok", false).field("error", e)
}

/// A rendered outcome: one line of compact JSON (no trailing newline)
/// plus the exit code the CLI uses for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Compact JSON, exactly the `result` object of a serve response and
    /// exactly the stdout line of `ioenc encode --json`.
    pub json: String,
    /// `0` on success, otherwise [`EncodeError::exit_code`].
    pub exit_code: u8,
}

/// The full request pipeline: parse, canonicalize, consult the cache,
/// solve, render. `cache` is consulted and filled only for
/// [`cacheable`](EncodeSpec::cacheable) requests, and never after
/// `cancel` has fired (a cancelled solve's partial outcome must not be
/// replayed). The returned JSON is byte-identical across worker counts,
/// cache states and symbol-permuted duplicate inputs.
pub fn outcome(
    text: &str,
    spec: &EncodeSpec,
    cache: Option<&ResultCache>,
    cancel: Option<&CancelToken>,
) -> Outcome {
    let cs = match parse_constraint_text(text) {
        Ok(cs) => cs,
        Err(e) => {
            return Outcome {
                json: failure_json(&e, None).render(),
                exit_code: e.exit_code(),
            }
        }
    };
    let form = canonical_form(&cs);
    let fingerprint = spec.fingerprint();
    let raw_hash = ioenc_rng::seed_from_str(text);
    let cache = cache.filter(|_| spec.cacheable());

    // Held (when the cache has a disk tier) from just before the solve
    // until the outcome is inserted, so that processes sharing the cache
    // directory solve each (key, fingerprint) exactly once.
    let mut _solve_guard = None;
    if let Some(store) = cache {
        if let Some(hit) = replay_hit(store, &cs, &form, &fingerprint, raw_hash) {
            return hit;
        }
        _solve_guard = store.begin_solve(form.key.as_u128(), &fingerprint);
        if _solve_guard.is_some() {
            // We may have blocked behind another process solving this
            // very key; its record is on disk now if so.
            if let Some(hit) = replay_hit(store, &cs, &form, &fingerprint, raw_hash) {
                return hit;
            }
        }
    }

    let cancelled = || cancel.is_some_and(|t| t.is_cancelled());
    match solve_fresh(&cs, &form, spec, cancel) {
        Ok(r) => {
            if let Some(store) = cache {
                if !cancelled() {
                    let canon_codes: Vec<u64> = form
                        .from_canonical
                        .iter()
                        .map(|&orig| r.encoding.codes()[orig])
                        .collect();
                    store.insert(
                        form.key.as_u128(),
                        &fingerprint,
                        CachedOutcome::Success {
                            width: r.encoding.width(),
                            canon_codes,
                            work: r.work,
                            mode: r.mode.clone(),
                        },
                    );
                }
            }
            Outcome {
                json: result_json(&cs, &form, &r).render(),
                exit_code: 0,
            }
        }
        Err(e) => {
            let json = failure_json(&e, Some(&cs)).render();
            let exit_code = e.exit_code();
            if let Some(store) = cache {
                if !cancelled() {
                    store.insert(
                        form.key.as_u128(),
                        &fingerprint,
                        CachedOutcome::Failure {
                            raw_hash,
                            json: json.clone(),
                            exit_code,
                        },
                    );
                }
            }
            Outcome { json, exit_code }
        }
    }
}

/// Tries to answer from the cache: a verified [`CachedOutcome::Success`]
/// is restored and re-rendered; a [`CachedOutcome::Failure`] replays
/// verbatim (the raw-hash guard already ran inside
/// [`ResultCache::lookup`]). `None` means miss — including a hit whose
/// re-verification against the original set failed, which is counted
/// and re-solved.
fn replay_hit(
    store: &ResultCache,
    cs: &ConstraintSet,
    form: &CanonicalForm,
    fingerprint: &str,
    raw_hash: u64,
) -> Option<Outcome> {
    match store.lookup(form.key.as_u128(), fingerprint, raw_hash)? {
        CachedOutcome::Success {
            width,
            canon_codes,
            work,
            mode,
        } => {
            let restored = form.restore_encoding(&Encoding::new(width, canon_codes));
            if restored.verify(cs).is_empty() {
                let r = EncodeResult {
                    encoding: restored,
                    mode,
                    work,
                    from_cache: true,
                    stats_text: None,
                    notes: Vec::new(),
                };
                return Some(Outcome {
                    json: result_json(cs, form, &r).render(),
                    exit_code: 0,
                });
            }
            store.note_verify_failure();
            None
        }
        CachedOutcome::Failure {
            json, exit_code, ..
        } => Some(Outcome { json, exit_code }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECTION1: &str = "symbols: a b c d\n(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d\n";
    const SECTION1_PERMUTED: &str =
        "symbols: d c b a\n(a,d)\n(b,c)\nb>c\n(c,d)\n(b,a)\na=d|b\na>c\n";

    #[test]
    fn outcome_is_deterministic_and_cache_transparent() {
        let spec = EncodeSpec::default();
        let cold = outcome(SECTION1, &spec, None, None);
        assert_eq!(cold.exit_code, 0);
        let cache = ResultCache::new(64);
        let miss = outcome(SECTION1, &spec, Some(&cache), None);
        let hit = outcome(SECTION1, &spec, Some(&cache), None);
        assert_eq!(cold.json, miss.json);
        assert_eq!(miss.json, hit.json);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn permuted_input_hits_the_cache_with_its_own_symbol_order() {
        let spec = EncodeSpec::default();
        let cache = ResultCache::new(64);
        let first = outcome(SECTION1, &spec, Some(&cache), None);
        let hit = outcome(SECTION1_PERMUTED, &spec, Some(&cache), None);
        assert_eq!(
            cache.hits(),
            1,
            "permuted spelling shares the canonical key"
        );
        // The permuted spelling's bytes equal its own fresh solve…
        let fresh = outcome(SECTION1_PERMUTED, &spec, None, None);
        assert_eq!(hit.json, fresh.json);
        // …and share the canonical key with the first spelling.
        let key = |o: &Outcome| {
            Json::parse(&o.json)
                .unwrap()
                .get("key")
                .and_then(|k| k.as_str().map(str::to_string))
                .unwrap()
        };
        assert_eq!(key(&first), key(&hit));
    }

    #[test]
    fn infeasible_failure_is_typed_and_replayed_only_for_identical_text() {
        let spec = EncodeSpec::default();
        let cache = ResultCache::new(64);
        let bad = "symbols: a b\na>b\nb>a\n";
        let first = outcome(bad, &spec, Some(&cache), None);
        assert_eq!(first.exit_code, 6);
        let replay = outcome(bad, &spec, Some(&cache), None);
        assert_eq!(first.json, replay.json);
        assert_eq!(cache.hits(), 1);
        // A permuted spelling of the same conflict must re-solve so its
        // lint spans point at its own lines.
        let permuted = "symbols: b a\nb>a\na>b\n";
        let other = outcome(permuted, &spec, Some(&cache), None);
        assert_eq!(other.exit_code, 6);
        assert_eq!(cache.hits(), 1, "raw-hash guard forced a miss");
    }

    #[test]
    fn deadline_requests_bypass_the_cache() {
        let spec = EncodeSpec {
            deadline_ms: Some(10_000),
            ..EncodeSpec::default()
        };
        assert!(!spec.cacheable());
        let cache = ResultCache::new(64);
        let a = outcome(SECTION1, &spec, Some(&cache), None);
        let b = outcome(SECTION1, &spec, Some(&cache), None);
        assert_eq!(a.exit_code, 0);
        assert_eq!(a.json, b.json);
        assert_eq!(cache.hits() + cache.misses(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn auto_without_budget_is_a_limit_error() {
        let spec = EncodeSpec {
            mode: Mode::Auto,
            ..EncodeSpec::default()
        };
        let out = outcome(SECTION1, &spec, None, None);
        assert_eq!(out.exit_code, 4);
        assert!(out.json.contains("\"class\":\"limit\""));
    }

    #[test]
    fn fingerprints_distinguish_modes_and_budgets() {
        let exact = EncodeSpec::default();
        let capped = EncodeSpec {
            mode: Mode::Exact {
                prime_cap: Some(10),
            },
            ..EncodeSpec::default()
        };
        let heur = EncodeSpec {
            mode: Mode::Heuristic {
                bits: Some(3),
                cost: CostFunction::Cubes,
            },
            ..EncodeSpec::default()
        };
        let budgeted = EncodeSpec {
            max_nodes: Some(100),
            ..EncodeSpec::default()
        };
        let fps = [
            exact.fingerprint(),
            capped.fingerprint(),
            heur.fingerprint(),
            budgeted.fingerprint(),
        ];
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
