//! Minimal HTTP/1.1 framing for the serve front end (DESIGN.md §6h).
//!
//! An incremental request parser plus a response writer, sized for the
//! event loop's byte buffers: [`parse_request`] looks at the bytes read
//! so far and either asks for more, yields one complete request (with the
//! number of bytes it consumed, so pipelined requests parse back to
//! back), or yields a typed framing error that maps to a 4xx/5xx response
//! and a connection close.
//!
//! Deliberately small surface: methods `GET`/`POST`, `Content-Length`
//! bodies only (chunked transfer encoding is rejected with `501`),
//! bounded head and body sizes (`431`/`413`), and both `\r\n` and bare
//! `\n` line endings accepted on input. Responses always carry an
//! explicit `Content-Length` and a `Connection` header, so pipelined
//! clients can delimit them without sniffing.

/// Upper bound on the request head (request line + headers) in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body in bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// The request target as sent (path plus optional query).
    pub target: String,
    /// Lowercased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty for bodyless requests).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default yes, `Connection: close` or HTTP/1.0 no).
    pub keep_alive: bool,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A framing-level failure: the HTTP status to answer with before
/// closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramingError {
    /// HTTP status code (`400`, `413`, `431`, `501`, `505`).
    pub status: u16,
    /// Human-readable detail for the JSON error body.
    pub message: String,
}

impl FramingError {
    fn new(status: u16, message: impl Into<String>) -> FramingError {
        FramingError {
            status,
            message: message.into(),
        }
    }
}

/// Outcome of examining the buffered bytes.
#[derive(Debug)]
pub enum Step {
    /// No complete request yet; read more bytes.
    Partial,
    /// One complete request, consuming the first `consumed` buffered
    /// bytes (pipelined successors may follow in the remainder).
    Ready {
        /// The parsed request.
        request: Box<Request>,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// The buffer can never become a valid request.
    Malformed(FramingError),
}

/// Finds the end of the head: the first blank line. Returns
/// `(head_end, body_start)` byte offsets.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    // Accept \r\n\r\n and \n\n (and the mixed forms a lenient reader
    // sees); scan for "\n" followed by optional "\r" and "\n".
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf.len() > i + 1 && buf[i + 1] == b'\n' {
                return Some((i, i + 2));
            }
            if buf.len() > i + 2 && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some((i, i + 3));
            }
        }
        i += 1;
    }
    None
}

/// Parses the buffered bytes into at most one request.
pub fn parse_request(buf: &[u8]) -> Step {
    let (head_end, body_start) = match find_head_end(buf) {
        Some(x) => x,
        None => {
            if buf.len() > MAX_HEAD_BYTES {
                return Step::Malformed(FramingError::new(
                    431,
                    format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                ));
            }
            return Step::Partial;
        }
    };
    if head_end > MAX_HEAD_BYTES {
        return Step::Malformed(FramingError::new(
            431,
            format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
        ));
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return Step::Malformed(FramingError::new(400, "request head is not UTF-8")),
    };
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => {
            return Step::Malformed(FramingError::new(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if parts.next().is_some() {
        return Step::Malformed(FramingError::new(
            400,
            format!("malformed request line {request_line:?}"),
        ));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Step::Malformed(FramingError::new(
                505,
                format!("unsupported protocol version {other:?}"),
            ))
        }
    };
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
            None => {
                return Step::Malformed(FramingError::new(
                    400,
                    format!("malformed header line {line:?}"),
                ))
            }
        }
    }
    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if let Some(te) = header("transfer-encoding") {
        return Step::Malformed(FramingError::new(
            501,
            format!("transfer-encoding {te:?} is not supported; use content-length"),
        ));
    }
    let content_length = match header("content-length") {
        None => 0usize,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Step::Malformed(FramingError::new(
                    400,
                    format!("invalid content-length {v:?}"),
                ))
            }
        },
    };
    if content_length > MAX_BODY_BYTES {
        return Step::Malformed(FramingError::new(
            413,
            format!("request body of {content_length} bytes exceeds {MAX_BODY_BYTES}"),
        ));
    }
    if buf.len() < body_start + content_length {
        return Step::Partial;
    }
    let keep_alive = match header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => http11,
    };
    Step::Ready {
        request: Box::new(Request {
            method: method.to_ascii_uppercase(),
            target: target.to_string(),
            headers,
            body: buf[body_start..body_start + content_length].to_vec(),
            keep_alive,
        }),
        consumed: body_start + content_length,
    }
}

/// The canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Error",
    }
}

/// Renders a complete response with an explicit `Content-Length` and
/// `Connection` header. `body` is sent verbatim.
pub fn response(status: u16, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
            reason(status),
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

/// Renders the JSON error body for a framing error (same `ok/error`
/// shape as the NDJSON protocol's typed failures, class `http`).
pub fn framing_error_body(err: &FramingError) -> Vec<u8> {
    let mut body = ioenc_core::json::Json::obj()
        .field("ok", false)
        .field(
            "error",
            ioenc_core::json::Json::obj()
                .field("class", "http")
                .field("status", u64::from(err.status))
                .field("message", err.message.as_str()),
        )
        .render();
    body.push('\n');
    body.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf) {
            Step::Ready { request, consumed } => (*request, consumed),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_post_with_body_and_pipelined_successor() {
        let bytes =
            b"POST /v1 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhelloGET /stats HTTP/1.1\r\n\r\n";
        let (req, consumed) = ready(bytes);
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1");
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive);
        let (req2, consumed2) = ready(&bytes[consumed..]);
        assert_eq!(req2.method, "GET");
        assert_eq!(req2.target, "/stats");
        assert!(req2.body.is_empty());
        assert_eq!(consumed + consumed2, bytes.len());
    }

    #[test]
    fn partial_until_body_complete() {
        let full = b"POST /v1 HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789";
        for cut in [3, 20, full.len() - 1] {
            assert!(
                matches!(parse_request(&full[..cut]), Step::Partial),
                "{cut}"
            );
        }
        let (req, consumed) = ready(full);
        assert_eq!(req.body, b"0123456789");
        assert_eq!(consumed, full.len());
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let (req, _) = ready(b"GET /health HTTP/1.1\nHost: x\n\n");
        assert_eq!(req.target, "/health");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn oversized_head_is_431_even_before_terminator() {
        let mut buf = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
        buf.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        match parse_request(&buf) {
            Step::Malformed(e) => assert_eq!(e.status, 431),
            other => panic!("expected 431, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_413() {
        let buf = format!(
            "POST /v1 HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse_request(buf.as_bytes()) {
            Step::Malformed(e) => assert_eq!(e.status, 413),
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn chunked_transfer_encoding_is_501() {
        let buf = b"POST /v1 HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        match parse_request(buf) {
            Step::Malformed(e) => assert_eq!(e.status, 501),
            other => panic!("expected 501, got {other:?}"),
        }
    }

    #[test]
    fn malformed_request_lines_and_headers_are_400() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            &b"GET / HTTP/1.1 extra\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\ncontent-length: pony\r\n\r\n"[..],
        ] {
            match parse_request(bad) {
                Step::Malformed(e) => assert_eq!(e.status, 400, "{bad:?}"),
                other => panic!("expected 400 for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn http10_and_connection_close_disable_keep_alive() {
        let (req, _) = ready(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = ready(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = ready(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive);
    }

    #[test]
    fn unsupported_versions_are_505() {
        match parse_request(b"GET / HTTP/2.0\r\n\r\n") {
            Step::Malformed(e) => assert_eq!(e.status, 505),
            other => panic!("expected 505, got {other:?}"),
        }
    }

    #[test]
    fn responses_have_explicit_framing() {
        let out = response(200, b"{\"ok\":true}\n", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 12\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}\n"), "{text}");
    }
}
