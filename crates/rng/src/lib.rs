#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Zero-dependency deterministic pseudo-random numbers for the `ioenc`
//! workspace.
//!
//! The workspace must build with `cargo build --offline` (no registry
//! access), so the external `rand` crate is off the table. Everything the
//! framework needs — seeded streams for the annealing baseline, the
//! synthetic benchmark generator, randomized tests and benchmark inputs —
//! is served by [`SplitMix64`], Steele, Lea and Flood's 64-bit mixing
//! generator. It is tiny, passes BigCrush in its output mixing, and every
//! stream is a pure function of its seed, which is exactly the
//! reproducibility contract the paper's tables require.
//!
//! # Examples
//!
//! ```
//! use ioenc_rng::SplitMix64;
//!
//! let mut rng = SplitMix64::new(42);
//! let a = rng.gen_range(0..10);
//! assert!(a < 10);
//! let again = SplitMix64::new(42).gen_range(0..10);
//! assert_eq!(a, again); // same seed, same stream
//! ```

use std::ops::Range;

/// A splitmix64 pseudo-random generator: 64 bits of state advanced by a
/// Weyl sequence, finalized with two xor-shift-multiply rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `usize` in `range` via the multiply-shift reduction
    /// (Lemire's unbiased-enough fast path; the tiny modulo bias of plain
    /// `%` is avoided without a rejection loop).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }

    /// A uniform `u64` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range_u64 on empty range");
        let span = range.end - range.start;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A derived generator whose stream is independent of (but determined
    /// by) this one — the `split` of splitmix.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// Folds a string into a 64-bit seed (FNV-1a), for seeding streams from
/// benchmark names.
pub fn seed_from_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One splitmix64 lane over `bytes`: the running state absorbs each
/// little-endian 8-byte chunk (zero-padded tail) and the total length,
/// and every absorption passes through the full splitmix64 finalizer.
///
/// This is the primitive under the serve layer's content addressing:
/// `ioenc_core::canonical_form` builds its 128-bit key from two lanes of
/// it ([`hash_bytes128`]), and the disk cache uses a single lane for
/// record checksums and fingerprint hashes — one shared definition keeps
/// every persisted artifact's key derivation in one place.
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = SplitMix64::new(seed ^ bytes.len() as u64).next_u64();
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = SplitMix64::new(h ^ u64::from_le_bytes(word)).next_u64();
    }
    h
}

/// Two independent [`hash_bytes`] lanes concatenated into 128 bits; the
/// derivation behind [`CanonicalKey`](https://docs.rs/ioenc-core)'s
/// content addresses.
pub fn hash_bytes128(bytes: &[u8]) -> u128 {
    const LANE_LO: u64 = 0x9e37_79b9_7f4a_7c15;
    const LANE_HI: u64 = 0x2545_f491_4f6c_dd1d;
    (u128::from(hash_bytes(LANE_HI, bytes)) << 64) | u128::from(hash_bytes(LANE_LO, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 0 from the splitmix64 reference
        // implementation (Vigna).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(rng.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(rng.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let u = rng.gen_range_u64(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = SplitMix64::new(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(4);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left 0..50 in order (astronomically unlikely)"
        );
    }

    #[test]
    fn split_streams_differ() {
        let mut rng = SplitMix64::new(11);
        let mut a = rng.split();
        let mut b = rng.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn string_seeds_differ() {
        assert_ne!(seed_from_str("planet"), seed_from_str("vmecont"));
        assert_eq!(seed_from_str("dk16"), seed_from_str("dk16"));
    }
}
