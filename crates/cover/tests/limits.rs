//! Behaviour at resource limits and awkward shapes: node budgets, wide
//! problems that skip column dominance, and duplicate columns.

use ioenc_cover::{BinateProblem, SolveError, UnateProblem};

#[test]
fn tiny_node_limit_still_returns_feasible_cover() {
    // A hard-ish random-ish instance with a tiny budget: the solver must
    // return the greedy-seeded solution flagged non-optimal.
    let mut p = UnateProblem::new(40);
    for r in 0..30usize {
        p.add_row([r % 40, (r * 7 + 3) % 40, (r * 13 + 11) % 40]);
    }
    p.set_node_limit(1);
    let sol = p.solve_exact().unwrap();
    assert!(!sol.optimal);
    for r in 0..30usize {
        let row = [r % 40, (r * 7 + 3) % 40, (r * 13 + 11) % 40];
        assert!(row.iter().any(|c| sol.columns.contains(c)));
    }
}

#[test]
fn duplicate_columns_are_merged_without_losing_optimality() {
    // Columns 1, 2, 3 cover identical rows; weights differ.
    let mut p = UnateProblem::with_weights(vec![5, 3, 7, 3, 1]);
    p.add_row([0, 1, 2, 3]);
    p.add_row([1, 2, 3]);
    p.add_row([4]);
    let sol = p.solve_exact().unwrap();
    assert!(sol.optimal);
    // Cheapest duplicate (weight 3) plus the essential column 4.
    assert_eq!(sol.cost, 4);
}

#[test]
fn wide_problem_exceeding_column_dominance_limit_still_solves() {
    // More columns than the dominance threshold: correctness must not
    // depend on that reduction.
    let cols = 7000;
    let mut p = UnateProblem::new(cols);
    for r in 0..20usize {
        // Each row has a private column plus shared filler columns.
        p.add_row([r, 20 + r % 5, 6000 + r % 3]);
    }
    let sol = p.solve_exact().unwrap();
    for r in 0..20usize {
        let row = [r, 20 + r % 5, 6000 + r % 3];
        assert!(row.iter().any(|c| sol.columns.contains(c)));
    }
    // Optimal cover uses the shared columns: 5 + 3 suffice? Rows share
    // column 20+r%5 (5 distinct) — each row covered by one of them.
    assert!(sol.cost <= 5);
}

#[test]
fn binate_node_limit_reports_gracefully() {
    let mut p = BinateProblem::new(30);
    for i in 0..30usize {
        p.add_clause([i, (i + 1) % 30], [(i + 2) % 30]);
    }
    p.set_node_limit(1);
    match p.solve_exact() {
        Ok(sol) => assert!(!sol.optimal),
        Err(SolveError::NodeLimit) => {}
        Err(e) => panic!("unexpected {e:?}"),
    }
}

#[test]
fn unate_weight_zero_columns_are_legal() {
    let mut p = UnateProblem::with_weights(vec![0, 1]);
    p.add_row([0, 1]);
    let sol = p.solve_exact().unwrap();
    assert_eq!(sol.cost, 0);
    assert_eq!(sol.columns, vec![0]);
}

#[test]
fn binate_tautological_clause_is_satisfied_by_rejection() {
    // Clause (¬0): satisfied by rejecting 0 — zero cost.
    let mut p = BinateProblem::new(2);
    p.add_clause([], [0]);
    let sol = p.solve_exact().unwrap();
    assert_eq!(sol.cost, 0);
    assert!(sol.columns.is_empty());
}
