//! Randomized tests: the exact solvers against brute-force enumeration,
//! driven by the workspace's deterministic PRNG.

use ioenc_cover::{BinateProblem, Parallelism, SolveError, UnateProblem};
use ioenc_rng::SplitMix64;

const COLS: usize = 10;
const CASES: usize = 80;

fn random_unate(rng: &mut SplitMix64) -> (Vec<u32>, Vec<Vec<usize>>) {
    let weights: Vec<u32> = (0..COLS).map(|_| rng.gen_range(1..8) as u32).collect();
    let num_rows = rng.gen_range(1..8);
    let rows: Vec<Vec<usize>> = (0..num_rows)
        .map(|_| {
            let len = rng.gen_range(1..4);
            (0..len).map(|_| rng.gen_range(0..COLS)).collect()
        })
        .collect();
    (weights, rows)
}

fn unate_brute(weights: &[u32], rows: &[Vec<usize>]) -> u64 {
    let mut best = u64::MAX;
    'outer: for mask in 0u32..(1 << COLS) {
        for r in rows {
            if !r.iter().any(|&c| mask & (1 << c) != 0) {
                continue 'outer;
            }
        }
        let cost: u64 = (0..COLS)
            .filter(|&c| mask & (1 << c) != 0)
            .map(|c| weights[c] as u64)
            .sum();
        best = best.min(cost);
    }
    best
}

#[test]
fn unate_exact_is_optimal() {
    let mut rng = SplitMix64::new(0xc0);
    for _ in 0..CASES {
        let (weights, rows) = random_unate(&mut rng);
        let mut p = UnateProblem::with_weights(weights.clone());
        for r in &rows {
            p.add_row(r.iter().copied());
        }
        let sol = p.solve_exact().unwrap();
        assert!(sol.optimal);
        assert_eq!(sol.cost, unate_brute(&weights, &rows));
        // And the returned columns really cover every row.
        for r in &rows {
            assert!(r.iter().any(|c| sol.columns.contains(c)));
        }
        // Cost is consistent with the selected columns.
        let recomputed: u64 = sol.columns.iter().map(|&c| weights[c] as u64).sum();
        assert_eq!(sol.cost, recomputed);
    }
}

#[test]
fn unate_exact_is_deterministic_across_thread_counts() {
    let mut rng = SplitMix64::new(0xc5);
    for _ in 0..CASES {
        let (weights, rows) = random_unate(&mut rng);
        let mut p = UnateProblem::with_weights(weights);
        for r in &rows {
            p.add_row(r.iter().copied());
        }
        let mut solutions = Vec::new();
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(1),
            Parallelism::Fixed(4),
        ] {
            let mut q = p.clone();
            q.set_parallelism(par);
            solutions.push(q.solve_exact().unwrap());
        }
        assert_eq!(solutions[0].columns, solutions[1].columns);
        assert_eq!(solutions[0].columns, solutions[2].columns);
        assert_eq!(solutions[0].cost, solutions[2].cost);
    }
}

#[test]
fn greedy_is_feasible_and_not_better_than_exact() {
    let mut rng = SplitMix64::new(0xc1);
    for _ in 0..CASES {
        let (weights, rows) = random_unate(&mut rng);
        let mut p = UnateProblem::with_weights(weights);
        for r in &rows {
            p.add_row(r.iter().copied());
        }
        let greedy = p.solve_greedy().unwrap();
        let exact = p.solve_exact().unwrap();
        assert!(greedy.cost >= exact.cost);
        for r in &rows {
            assert!(r.iter().any(|c| greedy.columns.contains(c)));
        }
    }
}

/// Wider random instances than [`random_unate`] so the branch-and-bound
/// actually recurses: the arena and warm-start paths below are only
/// interesting when the search allocates per-node state.
fn random_unate_wide(rng: &mut SplitMix64) -> (Vec<u32>, Vec<Vec<usize>>) {
    let cols = rng.gen_range(12..20);
    let weights: Vec<u32> = (0..cols).map(|_| rng.gen_range(1..6) as u32).collect();
    let num_rows = rng.gen_range(6..16);
    let rows: Vec<Vec<usize>> = (0..num_rows)
        .map(|_| {
            let len = rng.gen_range(1..5);
            (0..len).map(|_| rng.gen_range(0..cols)).collect()
        })
        .collect();
    (weights, rows)
}

#[test]
fn arena_reuse_is_invisible_in_solution_and_stats() {
    let mut rng = SplitMix64::new(0xc7);
    for _ in 0..CASES {
        let (weights, rows) = random_unate_wide(&mut rng);
        let mut p = UnateProblem::with_weights(weights);
        for r in &rows {
            p.add_row(r.iter().copied());
        }
        let mut q = p.clone();
        q.set_scratch_reuse(false);
        let (sol_arena, stats_arena) = p.solve_exact_with_stats().unwrap();
        let (sol_fresh, stats_fresh) = q.solve_exact_with_stats().unwrap();
        assert_eq!(sol_arena, sol_fresh);
        // Byte-identical search, not merely an equal answer: the arena
        // may not change which nodes are visited or pruned.
        assert_eq!(stats_arena.nodes, stats_fresh.nodes);
        assert_eq!(stats_arena.prunes, stats_fresh.prunes);
    }
}

#[test]
fn warm_start_junk_never_changes_the_solution() {
    let mut rng = SplitMix64::new(0xc8);
    for _ in 0..CASES {
        let (weights, rows) = random_unate_wide(&mut rng);
        let cols = weights.len();
        let mut p = UnateProblem::with_weights(weights);
        for r in &rows {
            p.add_row(r.iter().copied());
        }
        let baseline = p.solve_exact().unwrap();
        // Seed with random (possibly infeasible, duplicated, useless)
        // candidates; the incumbent is repaired or discarded, never
        // allowed to steer the search away from the canonical optimum.
        let len = rng.gen_range(0..cols);
        let junk: Vec<usize> = (0..len).map(|_| rng.gen_range(0..cols)).collect();
        let mut q = p.clone();
        q.set_warm_start(Some(junk));
        assert_eq!(q.solve_exact().unwrap(), baseline);
    }
}

type BinateCase = (Vec<u32>, Vec<(Vec<usize>, Vec<usize>)>);

fn random_binate(rng: &mut SplitMix64) -> BinateCase {
    let weights: Vec<u32> = (0..COLS).map(|_| rng.gen_range(1..8) as u32).collect();
    let num_clauses = rng.gen_range(1..7);
    let clauses = (0..num_clauses)
        .map(|_| {
            let np = rng.gen_range(0..3);
            let nn = rng.gen_range(0..3);
            (
                (0..np).map(|_| rng.gen_range(0..COLS)).collect(),
                (0..nn).map(|_| rng.gen_range(0..COLS)).collect(),
            )
        })
        .collect();
    (weights, clauses)
}

fn binate_brute(weights: &[u32], clauses: &[(Vec<usize>, Vec<usize>)]) -> Option<u64> {
    let mut best: Option<u64> = None;
    'outer: for mask in 0u32..(1 << COLS) {
        for (pos, neg) in clauses {
            let ok = pos.iter().any(|&c| mask & (1 << c) != 0)
                || neg.iter().any(|&c| mask & (1 << c) == 0);
            if !ok {
                continue 'outer;
            }
        }
        let cost: u64 = (0..COLS)
            .filter(|&c| mask & (1 << c) != 0)
            .map(|c| weights[c] as u64)
            .sum();
        best = Some(best.map_or(cost, |b: u64| b.min(cost)));
    }
    best
}

#[test]
fn binate_exact_matches_brute_force() {
    let mut rng = SplitMix64::new(0xc2);
    for _ in 0..CASES {
        let (weights, clauses) = random_binate(&mut rng);
        let mut p = BinateProblem::with_weights(weights.clone());
        for (pos, neg) in &clauses {
            p.add_clause(pos.iter().copied(), neg.iter().copied());
        }
        let best = binate_brute(&weights, &clauses);
        match p.solve_exact() {
            Ok(sol) => {
                assert!(sol.optimal);
                assert_eq!(Some(sol.cost), best);
                // Verify the returned assignment.
                for (pos, neg) in &clauses {
                    let ok = pos.iter().any(|c| sol.columns.contains(c))
                        || neg.iter().any(|c| !sol.columns.contains(c));
                    assert!(ok);
                }
            }
            Err(SolveError::Infeasible) => assert_eq!(best, None),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}

#[test]
fn binate_exact_is_deterministic_across_thread_counts() {
    let mut rng = SplitMix64::new(0xc6);
    for _ in 0..CASES {
        let (weights, clauses) = random_binate(&mut rng);
        let mut p = BinateProblem::with_weights(weights);
        for (pos, neg) in &clauses {
            p.add_clause(pos.iter().copied(), neg.iter().copied());
        }
        let mut results = Vec::new();
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(1),
            Parallelism::Fixed(4),
        ] {
            let mut q = p.clone();
            q.set_parallelism(par);
            results.push(q.solve_exact());
        }
        match (&results[0], &results[1], &results[2]) {
            (Ok(a), Ok(b), Ok(c)) => {
                assert_eq!(a.columns, b.columns);
                assert_eq!(a.columns, c.columns);
            }
            (Err(a), Err(b), Err(c)) => {
                assert_eq!(a, b);
                assert_eq!(a, c);
            }
            other => panic!("thread counts disagree on feasibility: {other:?}"),
        }
    }
}
