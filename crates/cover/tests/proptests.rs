//! Property tests: the exact solvers against brute-force enumeration.

use ioenc_cover::{BinateProblem, SolveError, UnateProblem};
use proptest::prelude::*;

const COLS: usize = 10;

fn arb_unate() -> impl Strategy<Value = (Vec<u32>, Vec<Vec<usize>>)> {
    (
        prop::collection::vec(1u32..8, COLS),
        prop::collection::vec(prop::collection::vec(0..COLS, 1..4), 1..8),
    )
}

fn unate_brute(weights: &[u32], rows: &[Vec<usize>]) -> u64 {
    let mut best = u64::MAX;
    'outer: for mask in 0u32..(1 << COLS) {
        for r in rows {
            if !r.iter().any(|&c| mask & (1 << c) != 0) {
                continue 'outer;
            }
        }
        let cost: u64 = (0..COLS)
            .filter(|&c| mask & (1 << c) != 0)
            .map(|c| weights[c] as u64)
            .sum();
        best = best.min(cost);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unate_exact_is_optimal((weights, rows) in arb_unate()) {
        let mut p = UnateProblem::with_weights(weights.clone());
        for r in &rows {
            p.add_row(r.iter().copied());
        }
        let sol = p.solve_exact().unwrap();
        prop_assert!(sol.optimal);
        prop_assert_eq!(sol.cost, unate_brute(&weights, &rows));
        // And the returned columns really cover every row.
        for r in &rows {
            prop_assert!(r.iter().any(|c| sol.columns.contains(c)));
        }
        // Cost is consistent with the selected columns.
        let recomputed: u64 = sol.columns.iter().map(|&c| weights[c] as u64).sum();
        prop_assert_eq!(sol.cost, recomputed);
    }

    #[test]
    fn greedy_is_feasible_and_not_better_than_exact((weights, rows) in arb_unate()) {
        let mut p = UnateProblem::with_weights(weights.clone());
        for r in &rows {
            p.add_row(r.iter().copied());
        }
        let greedy = p.solve_greedy().unwrap();
        let exact = p.solve_exact().unwrap();
        prop_assert!(greedy.cost >= exact.cost);
        for r in &rows {
            prop_assert!(r.iter().any(|c| greedy.columns.contains(c)));
        }
    }

    #[test]
    fn binate_exact_matches_brute_force(
        weights in prop::collection::vec(1u32..8, COLS),
        clauses in prop::collection::vec(
            (
                prop::collection::vec(0..COLS, 0..3),
                prop::collection::vec(0..COLS, 0..3),
            ),
            1..7,
        )
    ) {
        let mut p = BinateProblem::with_weights(weights.clone());
        for (pos, neg) in &clauses {
            p.add_clause(pos.iter().copied(), neg.iter().copied());
        }
        // Brute force.
        let mut best: Option<u64> = None;
        'outer: for mask in 0u32..(1 << COLS) {
            for (pos, neg) in &clauses {
                let ok = pos.iter().any(|&c| mask & (1 << c) != 0)
                    || neg.iter().any(|&c| mask & (1 << c) == 0);
                if !ok {
                    continue 'outer;
                }
            }
            let cost: u64 = (0..COLS)
                .filter(|&c| mask & (1 << c) != 0)
                .map(|c| weights[c] as u64)
                .sum();
            best = Some(best.map_or(cost, |b: u64| b.min(cost)));
        }
        match p.solve_exact() {
            Ok(sol) => {
                prop_assert!(sol.optimal);
                prop_assert_eq!(Some(sol.cost), best);
                // Verify the returned assignment.
                for (pos, neg) in &clauses {
                    let ok = pos.iter().any(|c| sol.columns.contains(c))
                        || neg.iter().any(|c| !sol.columns.contains(c));
                    prop_assert!(ok);
                }
            }
            Err(SolveError::Infeasible) => prop_assert_eq!(best, None),
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }
}
