//! Exact and greedy unate covering.

use crate::{CancelToken, CoverStats, Interrupt, Parallelism, Solution, SolveError};
use ioenc_bitset::BitSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A unate (set-) covering problem: choose a minimum-weight set of columns
/// such that every row contains at least one chosen column.
///
/// Rows are sets of column indices. Weights default to 1.
///
/// # Examples
///
/// ```
/// use ioenc_cover::UnateProblem;
///
/// let mut p = UnateProblem::with_weights(vec![1, 10, 1]);
/// p.add_row([0, 1]);
/// p.add_row([1, 2]);
/// // Column 1 alone covers both rows, but columns {0, 2} are cheaper.
/// let sol = p.solve_exact().unwrap();
/// assert_eq!(sol.cost, 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnateProblem {
    num_cols: usize,
    weights: Vec<u32>,
    rows: Vec<BitSet>,
    node_limit: u64,
    work_budget: Option<u64>,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    parallelism: Parallelism,
}

/// Default branch-and-bound node budget; generous for the problem sizes the
/// encoder produces.
const DEFAULT_NODE_LIMIT: u64 = 5_000_000;

/// Skip the quadratic column-dominance reduction above this column count.
const COL_DOMINANCE_LIMIT: usize = 6_000;

/// Subproblems the deterministic root expansion aims for. Fixed (not a
/// function of the thread count) so every [`Parallelism`] setting merges
/// the same task pool.
const TASK_TARGET: usize = 32;

/// Nodes the root expansion may pop before giving up on reaching
/// [`TASK_TARGET`].
const EXPANSION_BUDGET: u64 = 256;

impl UnateProblem {
    /// A problem with `num_cols` unit-weight columns and no rows.
    pub fn new(num_cols: usize) -> Self {
        Self::with_weights(vec![1; num_cols])
    }

    /// A problem with explicit column weights.
    pub fn with_weights(weights: Vec<u32>) -> Self {
        UnateProblem {
            num_cols: weights.len(),
            weights,
            rows: Vec::new(),
            node_limit: DEFAULT_NODE_LIMIT,
            work_budget: None,
            cancel: None,
            deadline: None,
            parallelism: Parallelism::default(),
        }
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds a row given the columns that cover it.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn add_row<I: IntoIterator<Item = usize>>(&mut self, cols: I) {
        self.rows.push(BitSet::from_indices(self.num_cols, cols));
    }

    /// Adds a row from a pre-built column set.
    ///
    /// # Panics
    ///
    /// Panics if the set's capacity differs from the column count.
    pub fn add_row_set(&mut self, cols: BitSet) {
        assert_eq!(cols.capacity(), self.num_cols, "row width mismatch");
        self.rows.push(cols);
    }

    /// Overrides the branch-and-bound node budget.
    pub fn set_node_limit(&mut self, limit: u64) {
        self.node_limit = limit;
    }

    /// Enables *strict budget mode* with the given node cap (`None`
    /// disables it again).
    ///
    /// Strict mode differs from [`set_node_limit`](Self::set_node_limit)
    /// in two ways. First, exhausting the cap is an error
    /// ([`SolveError::Budget`]) even when a feasible cover was found, so a
    /// degradation ladder can fall back to a cheaper method instead of
    /// silently accepting a non-optimal cover. Second, workers prune
    /// against the *fixed* bound computed by the deterministic root
    /// expansion (plus their task-local best) rather than the shared
    /// atomic bound, making the explored node set — and therefore budget
    /// exhaustion itself — bit-identical across all [`Parallelism`]
    /// settings. When the search completes within the budget it returns
    /// the same optimal solution as the unrestricted search.
    pub fn set_work_budget(&mut self, budget: Option<u64>) {
        self.work_budget = budget;
    }

    /// Installs a cooperative cancellation token, checked every 256 nodes.
    pub fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// Installs a wall-clock deadline, checked every 256 nodes.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Sets the thread policy for [`solve_exact`](Self::solve_exact).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The configured thread policy.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Greedy cover: repeatedly choose the column covering the most
    /// still-uncovered rows per unit weight.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if some row has no columns.
    pub fn solve_greedy(&self) -> Result<Solution, SolveError> {
        if self.rows.iter().any(|r| r.is_empty()) {
            return Err(SolveError::Infeasible);
        }
        let mut uncovered: Vec<usize> = (0..self.rows.len()).collect();
        let mut chosen = Vec::new();
        let mut cost = 0u64;
        while !uncovered.is_empty() {
            let mut counts = vec![0u32; self.num_cols];
            for &r in &uncovered {
                for c in self.rows[r].iter() {
                    counts[c] += 1;
                }
            }
            let best = (0..self.num_cols)
                .filter(|&c| counts[c] > 0)
                .max_by(|&a, &b| {
                    // Compare counts[a]/w[a] vs counts[b]/w[b] without floats.
                    let lhs = counts[a] as u64 * self.weights[b] as u64;
                    let rhs = counts[b] as u64 * self.weights[a] as u64;
                    lhs.cmp(&rhs)
                })
                .unwrap_or(0); // unreachable: an uncovered row exists and every
                               // row was built non-empty, so some count > 0
            chosen.push(best);
            cost += self.weights[best] as u64;
            uncovered.retain(|&r| !self.rows[r].contains(best));
        }
        Ok(Solution {
            columns: chosen,
            cost,
            optimal: false,
        })
    }

    /// Exact minimum-weight cover by branch and bound.
    ///
    /// Reductions: essential columns, row dominance, column dominance (when
    /// the column count is modest), and a maximal-independent-set lower
    /// bound. Branching expands the columns of a shortest row. The search
    /// runs over a deterministic subproblem pool swept by the configured
    /// [`Parallelism`]; results are identical for every thread count.
    ///
    /// If the node budget runs out the best feasible solution found so far
    /// is returned with `optimal = false`.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if some row has no columns.
    pub fn solve_exact(&self) -> Result<Solution, SolveError> {
        self.solve_exact_with_stats().map(|(sol, _)| sol)
    }

    /// Like [`solve_exact`](Self::solve_exact), also returning search
    /// counters.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if some row has no columns;
    /// [`SolveError::Budget`] when a strict work budget
    /// ([`set_work_budget`](Self::set_work_budget)) expires;
    /// [`SolveError::Interrupted`] on cancellation or deadline expiry.
    pub fn solve_exact_with_stats(&self) -> Result<(Solution, CoverStats), SolveError> {
        if self.rows.iter().any(|r| r.is_empty()) {
            return Err(SolveError::Infeasible);
        }
        let strict = self.work_budget.is_some();
        let node_limit = self.work_budget.unwrap_or(self.node_limit);
        let interrupt = Interrupt {
            cancel: self.cancel.clone(),
            deadline: self.deadline,
        };
        // Root preprocessing: columns with identical row coverage are
        // interchangeable — keep one cheapest representative. (Prime sets
        // frequently contain many columns covering the same dichotomies.)
        let rows = self.merge_duplicate_columns();
        // Seed the upper bound with a greedy solution.
        let greedy = self.solve_greedy()?;

        let mut stats = CoverStats {
            threads: self.parallelism.threads(),
            ..CoverStats::default()
        };

        // Phase 1: deterministic breadth-first decomposition of the root.
        let root = Node {
            rows,
            chosen: Vec::new(),
            cost: 0,
            depth: 0,
            seq: 0,
        };
        let mut bound = greedy.cost;
        let mut solved: Vec<(u64, Vec<usize>, u64)> = Vec::new();
        let tasks = match self.expand_tasks(
            root,
            &mut bound,
            &mut solved,
            &mut stats,
            node_limit,
            &interrupt,
        ) {
            Ok(tasks) => tasks,
            Err(()) => return Err(SolveError::Interrupted { stats }),
        };
        stats.tasks = tasks.len();

        // Phase 2: sweep the pool. Outside budget mode the workers share
        // one atomic upper bound; in strict budget mode each worker prunes
        // against the fixed phase-1 bound so the explored node set does not
        // depend on scheduling.
        let shared_bound = AtomicU64::new(bound);
        let budget = per_task_budget(node_limit, stats.nodes, tasks.len());
        let results = self.sweep_tasks(
            &tasks,
            (!strict).then_some(&shared_bound),
            bound,
            budget,
            stats.threads,
            &interrupt,
        );

        // Deterministic merge: min (cost, creation sequence); the greedy
        // seed is the fallback of last resort.
        let mut best: (u64, u64, &Vec<usize>) = (greedy.cost, u64::MAX, &greedy.columns);
        for (cost, cols, seq) in &solved {
            if (*cost, *seq) < (best.0, best.1) {
                best = (*cost, *seq, cols);
            }
        }
        let mut exhausted = false;
        let mut interrupted = false;
        for (task, result) in tasks.iter().zip(&results) {
            stats.nodes += result.nodes;
            stats.prunes += result.prunes;
            exhausted |= result.exhausted;
            interrupted |= result.interrupted;
            if let Some((cost, cols)) = &result.best {
                if (*cost, task.seq) < (best.0, best.1) {
                    best = (*cost, task.seq, cols);
                }
            }
        }
        if interrupted {
            return Err(SolveError::Interrupted { stats });
        }
        if strict && exhausted {
            return Err(SolveError::Budget { stats });
        }
        let solution = Solution {
            columns: best.2.clone(),
            cost: best.0,
            optimal: !exhausted,
        };
        Ok((solution, stats))
    }

    /// Pops nodes breadth-first, reducing each and queueing its children,
    /// until the queue reaches [`TASK_TARGET`] or the expansion budget is
    /// spent. Fully sequential and deterministic. Subproblems solved
    /// outright are appended to `solved` and tighten `bound`. `Err(())`
    /// reports an interruption.
    fn expand_tasks(
        &self,
        root: Node,
        bound: &mut u64,
        solved: &mut Vec<(u64, Vec<usize>, u64)>,
        stats: &mut CoverStats,
        node_limit: u64,
        interrupt: &Interrupt,
    ) -> Result<Vec<Node>, ()> {
        let mut queue: VecDeque<Node> = VecDeque::from([root]);
        let mut next_seq = 1u64;
        let expansion_cap = EXPANSION_BUDGET.min(node_limit);
        while queue.len() < TASK_TARGET && stats.nodes < expansion_cap {
            let Some(mut node) = queue.pop_front() else {
                break;
            };
            if interrupt.check(stats.nodes) {
                return Err(());
            }
            stats.nodes += 1;
            match self.reduce_node(&mut node, *bound, &mut stats.prunes) {
                Reduced::Solved => {
                    *bound = (*bound).min(node.cost);
                    solved.push((node.cost, node.chosen, node.seq));
                }
                Reduced::Infeasible | Reduced::Pruned => {}
                Reduced::Open => {
                    for child in self.children_of(&node, &mut next_seq) {
                        queue.push_back(child);
                    }
                }
            }
        }
        Ok(queue.into())
    }

    /// Runs every task through a sequential depth-first search, claiming
    /// tasks from a shared counter. With one thread the sweep runs inline.
    /// `shared_bound: None` selects strict budget mode: workers prune
    /// against `fixed_bound` plus their task-local best only.
    #[allow(clippy::too_many_arguments)]
    fn sweep_tasks(
        &self,
        tasks: &[Node],
        shared_bound: Option<&AtomicU64>,
        fixed_bound: u64,
        budget: u64,
        threads: usize,
        interrupt: &Interrupt,
    ) -> Vec<TaskResult> {
        let results: Vec<Mutex<TaskResult>> = tasks
            .iter()
            .map(|_| Mutex::new(TaskResult::default()))
            .collect();
        let next = AtomicUsize::new(0);
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(task) = tasks.get(i) else { break };
            let mut ctx = TaskCtx {
                shared_bound,
                fixed_bound,
                result: TaskResult::default(),
                budget,
                interrupt,
            };
            self.dfs(task.clone(), &mut ctx);
            *results[i]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = ctx.result;
        };
        let workers = threads.min(tasks.len().max(1));
        if workers <= 1 {
            worker();
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(worker);
                }
            });
        }
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect()
    }

    /// Per-task sequential branch and bound against the shared (or fixed)
    /// bound.
    fn dfs(&self, mut node: Node, ctx: &mut TaskCtx<'_>) {
        ctx.result.nodes += 1;
        if ctx.result.nodes > ctx.budget {
            ctx.result.exhausted = true;
            return;
        }
        if ctx.interrupt.check(ctx.result.nodes) {
            ctx.result.interrupted = true;
            return;
        }
        // Strict pruning against the shared bound is schedule-safe; the
        // task's own best additionally prunes at `>=` — it evolves inside
        // this task only, so the first minimal-cost solution in the task's
        // DFS order is still always reached, for any schedule. In budget
        // mode the shared bound is absent and the fixed phase-1 bound is
        // used instead, making the node count schedule-independent.
        let shared = match ctx.shared_bound {
            Some(b) => b.load(Ordering::Relaxed),
            None => ctx.fixed_bound,
        };
        let local = ctx.result.best.as_ref().map_or(u64::MAX, |(c, _)| *c);
        let bound = shared.min(local.saturating_sub(1));
        match self.reduce_node(&mut node, bound, &mut ctx.result.prunes) {
            Reduced::Solved => ctx.record(node.cost, node.chosen),
            Reduced::Infeasible | Reduced::Pruned => {}
            Reduced::Open => {
                let mut seq = 0;
                for child in self.children_of(&node, &mut seq) {
                    self.dfs(child, ctx);
                    if ctx.result.exhausted || ctx.result.interrupted {
                        return;
                    }
                }
            }
        }
    }

    /// Applies the reduction loop (essentials, row dominance, column
    /// dominance) and the bound tests to one node.
    ///
    /// Pruning is strict (`>` against `bound`) so subtrees holding
    /// solutions *equal* to the bound survive — the keystone of
    /// schedule-independent results under a shared, concurrently-improving
    /// bound.
    fn reduce_node(&self, node: &mut Node, bound: u64, prunes: &mut u64) -> Reduced {
        loop {
            if node.cost > bound {
                *prunes += 1;
                return Reduced::Pruned;
            }
            if node.rows.is_empty() {
                return Reduced::Solved;
            }
            if node.rows.iter().any(|r| r.is_empty()) {
                // Infeasible branch (can happen after column removal).
                return Reduced::Infeasible;
            }
            // Essential columns: rows with a single column.
            if let Some(r) = node.rows.iter().position(|r| r.count() == 1) {
                let Some(c) = node.rows[r].first() else {
                    continue; // unreachable: position() found count() == 1
                };
                node.cost += self.weights[c] as u64;
                node.chosen.push(c);
                node.rows.retain(|row| !row.contains(c));
                continue;
            }
            // Row dominance: a row that is a superset of another is
            // implied by it.
            let before = node.rows.len();
            node.rows.sort_by_key(|r| r.count());
            node.rows.dedup();
            let mut keep = vec![true; node.rows.len()];
            for i in 0..node.rows.len() {
                if !keep[i] {
                    continue;
                }
                for (j, k) in keep.iter_mut().enumerate().skip(i + 1) {
                    if *k && node.rows[i].is_subset(&node.rows[j]) {
                        *k = false;
                    }
                }
            }
            let mut i = 0;
            node.rows.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
            if node.rows.len() != before {
                continue;
            }
            // Column dominance (skipped for very wide problems): remove a
            // column whose row set is a subset of a cheaper-or-equal
            // column's row set.
            let mut active = BitSet::new(self.num_cols);
            for r in &node.rows {
                active.union_with(r);
            }
            let active_cols: Vec<usize> = active.iter().collect();
            let limit = if node.depth == 0 {
                COL_DOMINANCE_LIMIT
            } else {
                COL_DOMINANCE_LIMIT / 8
            };
            if active_cols.len() <= limit {
                let mut col_rows: Vec<(usize, BitSet)> = active_cols
                    .iter()
                    .map(|&c| {
                        let mut s = BitSet::new(node.rows.len());
                        for (i, r) in node.rows.iter().enumerate() {
                            if r.contains(c) {
                                s.insert(i);
                            }
                        }
                        (c, s)
                    })
                    .collect();
                // Sort by descending row count so dominators come first.
                col_rows.sort_by_key(|(_, rows)| std::cmp::Reverse(rows.count()));
                let mut removed = Vec::new();
                for i in 0..col_rows.len() {
                    let (ci, ref si) = col_rows[i];
                    if removed.contains(&ci) {
                        continue;
                    }
                    for item in col_rows.iter().skip(i + 1) {
                        let (cj, ref sj) = *item;
                        if removed.contains(&cj) {
                            continue;
                        }
                        if sj.is_subset(si) && self.weights[ci] <= self.weights[cj] {
                            removed.push(cj);
                        }
                    }
                }
                if !removed.is_empty() {
                    for row in &mut node.rows {
                        for &c in &removed {
                            row.remove(c);
                        }
                    }
                    continue;
                }
            }
            break;
        }
        // Lower bound (also strict).
        if node.cost + self.mis_lower_bound(&node.rows) > bound {
            *prunes += 1;
            return Reduced::Pruned;
        }
        Reduced::Open
    }

    /// Child subproblems branching on the columns of a shortest row, with
    /// already-tried columns excluded from later siblings.
    fn children_of(&self, node: &Node, next_seq: &mut u64) -> Vec<Node> {
        let pivot = node
            .rows
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.count())
            .map(|(i, _)| i)
            .unwrap_or(0); // children_of is only called on Open nodes,
                           // whose row list is non-empty
        let mut cols: Vec<usize> = node.rows[pivot].iter().collect();
        // Try the most-covering column first for a quick strong bound.
        cols.sort_by_key(|&c| {
            std::cmp::Reverse(node.rows.iter().filter(|r| r.contains(c)).count())
        });
        let mut children = Vec::with_capacity(cols.len());
        let mut excluded: Vec<usize> = Vec::new();
        for c in cols {
            let mut sub_rows: Vec<BitSet> = node
                .rows
                .iter()
                .filter(|r| !r.contains(c))
                .cloned()
                .collect();
            // Columns already tried at this node are excluded from the
            // subtree (they would revisit the same covers).
            for row in &mut sub_rows {
                for &e in &excluded {
                    row.remove(e);
                }
            }
            let mut sub_chosen = node.chosen.clone();
            sub_chosen.push(c);
            *next_seq += 1;
            children.push(Node {
                rows: sub_rows,
                chosen: sub_chosen,
                cost: node.cost + self.weights[c] as u64,
                depth: node.depth + 1,
                seq: *next_seq,
            });
            excluded.push(c);
        }
        children
    }

    /// Greedy maximal set of pairwise-disjoint rows; the sum of each such
    /// row's cheapest column is a valid lower bound.
    fn mis_lower_bound(&self, rows: &[BitSet]) -> u64 {
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by_key(|&r| rows[r].count());
        let mut used = BitSet::new(self.num_cols);
        let mut bound = 0u64;
        for r in order {
            if rows[r].is_disjoint(&used) {
                used.union_with(&rows[r]);
                bound += rows[r]
                    .iter()
                    .map(|c| self.weights[c] as u64)
                    .min()
                    .unwrap_or(0);
            }
        }
        bound
    }

    /// Removes, from a copy of the rows, every column whose row coverage
    /// equals a cheaper-or-equal column's coverage.
    fn merge_duplicate_columns(&self) -> Vec<BitSet> {
        use std::collections::HashMap;
        let mut col_rows: Vec<BitSet> = vec![BitSet::new(self.rows.len()); self.num_cols];
        for (r, row) in self.rows.iter().enumerate() {
            for c in row.iter() {
                col_rows[c].insert(r);
            }
        }
        let mut representative: HashMap<&BitSet, usize> = HashMap::new();
        let mut drop: Vec<usize> = Vec::new();
        for (c, rows_of_c) in col_rows.iter().enumerate() {
            if rows_of_c.is_empty() {
                continue;
            }
            match representative.get(rows_of_c) {
                None => {
                    representative.insert(rows_of_c, c);
                }
                Some(&keep) => {
                    if self.weights[c] < self.weights[keep] {
                        drop.push(keep);
                        representative.insert(rows_of_c, c);
                    } else {
                        drop.push(c);
                    }
                }
            }
        }
        let mut rows = self.rows.clone();
        for row in &mut rows {
            for &c in &drop {
                row.remove(c);
            }
        }
        rows
    }
}

/// Splits the remaining node budget evenly over the task pool. The split
/// depends only on deterministic quantities, so budget exhaustion is
/// task-local.
fn per_task_budget(node_limit: u64, spent: u64, tasks: usize) -> u64 {
    (node_limit.saturating_sub(spent) / tasks.max(1) as u64).max(1)
}

/// A subproblem: remaining rows plus the partial cover that produced them.
#[derive(Debug, Clone)]
struct Node {
    rows: Vec<BitSet>,
    chosen: Vec<usize>,
    cost: u64,
    depth: usize,
    /// Creation order in the deterministic root expansion; the merge
    /// tie-breaker.
    seq: u64,
}

enum Reduced {
    Solved,
    Infeasible,
    Pruned,
    Open,
}

#[derive(Debug, Default)]
struct TaskResult {
    best: Option<(u64, Vec<usize>)>,
    nodes: u64,
    prunes: u64,
    exhausted: bool,
    interrupted: bool,
}

struct TaskCtx<'a> {
    /// `None` in strict budget mode (prune against `fixed_bound` only).
    shared_bound: Option<&'a AtomicU64>,
    fixed_bound: u64,
    result: TaskResult,
    budget: u64,
    interrupt: &'a Interrupt,
}

impl TaskCtx<'_> {
    fn record(&mut self, cost: u64, cols: Vec<usize>) {
        let local = self.result.best.as_ref().map_or(u64::MAX, |(c, _)| *c);
        if cost < local {
            self.result.best = Some((cost, cols));
            if let Some(bound) = self.shared_bound {
                bound.fetch_min(cost, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_problem_has_empty_cover() {
        let p = UnateProblem::new(3);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 0);
        assert!(sol.columns.is_empty());
        assert!(sol.optimal);
    }

    #[test]
    fn infeasible_row() {
        let mut p = UnateProblem::new(2);
        p.add_row([0]);
        p.add_row(std::iter::empty());
        assert_eq!(p.solve_exact(), Err(SolveError::Infeasible));
        assert_eq!(p.solve_greedy(), Err(SolveError::Infeasible));
    }

    #[test]
    fn essential_column_is_forced() {
        let mut p = UnateProblem::new(3);
        p.add_row([2]);
        p.add_row([0, 2]);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.columns, vec![2]);
        assert_eq!(sol.cost, 1);
    }

    #[test]
    fn weighted_prefers_cheap_pair() {
        let mut p = UnateProblem::with_weights(vec![1, 10, 1]);
        p.add_row([0, 1]);
        p.add_row([1, 2]);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 2);
        let mut cols = sol.columns;
        cols.sort();
        assert_eq!(cols, vec![0, 2]);
    }

    #[test]
    fn unit_weights_prefer_single_column() {
        let mut p = UnateProblem::new(3);
        p.add_row([0, 1]);
        p.add_row([1, 2]);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 1);
        assert_eq!(sol.columns, vec![1]);
    }

    #[test]
    fn greedy_is_feasible() {
        let mut p = UnateProblem::new(5);
        p.add_row([0, 1]);
        p.add_row([1, 2]);
        p.add_row([3]);
        p.add_row([2, 4]);
        let sol = p.solve_greedy().unwrap();
        for r in 0..p.num_rows() {
            assert!(sol.columns.iter().any(|&c| p.rows[r].contains(c)));
        }
    }

    /// Brute force minimum cover by subset enumeration.
    fn brute_force(p: &UnateProblem) -> Option<u64> {
        let n = p.num_cols;
        assert!(n <= 16);
        let mut best: Option<u64> = None;
        'outer: for mask in 0u32..(1 << n) {
            for r in &p.rows {
                if !r.iter().any(|c| mask & (1 << c) != 0) {
                    continue 'outer;
                }
            }
            let cost: u64 = (0..n)
                .filter(|&c| mask & (1 << c) != 0)
                .map(|c| p.weights[c] as u64)
                .sum();
            best = Some(best.map_or(cost, |b: u64| b.min(cost)));
        }
        best
    }

    #[test]
    fn exact_matches_brute_force_on_fixed_cases() {
        let cases: Vec<(usize, Vec<Vec<usize>>)> = vec![
            (4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]),
            (
                5,
                vec![
                    vec![0, 1, 2],
                    vec![2, 3],
                    vec![3, 4],
                    vec![0, 4],
                    vec![1, 3],
                ],
            ),
            (
                6,
                vec![vec![0], vec![1, 2], vec![2, 3, 4], vec![4, 5], vec![1, 5]],
            ),
        ];
        for (n, rows) in cases {
            let mut p = UnateProblem::new(n);
            for r in rows {
                p.add_row(r);
            }
            let sol = p.solve_exact().unwrap();
            assert!(sol.optimal);
            assert_eq!(Some(sol.cost), brute_force(&p));
        }
    }

    #[test]
    fn solution_covers_all_rows() {
        let mut p = UnateProblem::new(8);
        for i in 0..8 {
            p.add_row([i, (i + 3) % 8]);
        }
        let sol = p.solve_exact().unwrap();
        for r in &p.rows {
            assert!(sol.columns.iter().any(|&c| r.contains(c)));
        }
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        // A ring structure with several equal-cost optima: the stress case
        // for deterministic tie-breaking.
        let mut p = UnateProblem::new(12);
        for i in 0..12 {
            p.add_row([i, (i + 4) % 12, (i + 7) % 12]);
        }
        let mut baseline = None;
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(1),
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let mut q = p.clone();
            q.set_parallelism(par);
            let sol = q.solve_exact().unwrap();
            match &baseline {
                None => baseline = Some(sol),
                Some(b) => assert_eq!(&sol, b, "{par:?} diverged"),
            }
        }
    }

    #[test]
    fn stats_report_search_effort() {
        let mut p = UnateProblem::new(10);
        for i in 0..10 {
            p.add_row([i, (i + 3) % 10]);
        }
        let (sol, stats) = p.solve_exact_with_stats().unwrap();
        assert!(sol.optimal);
        assert!(stats.nodes > 0);
        assert!(stats.threads >= 1);
    }

    #[test]
    fn node_limit_still_returns_feasible() {
        let mut p = UnateProblem::new(14);
        for i in 0..14 {
            p.add_row([i, (i + 5) % 14, (i + 9) % 14]);
        }
        p.set_node_limit(1);
        let sol = p.solve_exact().unwrap();
        for r in &p.rows {
            assert!(sol.columns.iter().any(|&c| r.contains(c)));
        }
    }

    #[test]
    fn work_budget_exhaustion_is_an_error_and_deterministic() {
        let mut p = UnateProblem::new(12);
        for i in 0..12 {
            p.add_row([i, (i + 4) % 12, (i + 7) % 12]);
        }
        p.set_work_budget(Some(8));
        let mut baseline = None;
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let mut q = p.clone();
            q.set_parallelism(par);
            let err = q.solve_exact_with_stats().unwrap_err();
            let SolveError::Budget { stats } = err else {
                panic!("expected Budget error, got {err:?}");
            };
            let counters = (stats.nodes, stats.prunes, stats.tasks);
            match &baseline {
                None => baseline = Some(counters),
                Some(b) => assert_eq!(&counters, b, "{par:?} diverged"),
            }
        }
    }

    #[test]
    fn ample_work_budget_matches_unrestricted_solution() {
        let mut p = UnateProblem::new(12);
        for i in 0..12 {
            p.add_row([i, (i + 4) % 12, (i + 7) % 12]);
        }
        let unrestricted = p.solve_exact().unwrap();
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
        ] {
            let mut q = p.clone();
            q.set_work_budget(Some(1_000_000));
            q.set_parallelism(par);
            let sol = q.solve_exact().unwrap();
            assert_eq!(sol, unrestricted, "{par:?} diverged");
        }
    }

    #[test]
    fn cancel_token_interrupts_search() {
        let mut p = UnateProblem::new(14);
        for i in 0..14 {
            p.add_row([i, (i + 5) % 14, (i + 9) % 14]);
        }
        let token = crate::CancelToken::new();
        token.cancel();
        p.set_cancel(Some(token));
        match p.solve_exact() {
            Err(SolveError::Interrupted { .. }) => {}
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }
}
