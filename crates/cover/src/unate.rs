//! Exact and greedy unate covering.

use crate::{Solution, SolveError};
use ioenc_bitset::BitSet;

/// A unate (set-) covering problem: choose a minimum-weight set of columns
/// such that every row contains at least one chosen column.
///
/// Rows are sets of column indices. Weights default to 1.
///
/// # Examples
///
/// ```
/// use ioenc_cover::UnateProblem;
///
/// let mut p = UnateProblem::with_weights(vec![1, 10, 1]);
/// p.add_row([0, 1]);
/// p.add_row([1, 2]);
/// // Column 1 alone covers both rows, but columns {0, 2} are cheaper.
/// let sol = p.solve_exact().unwrap();
/// assert_eq!(sol.cost, 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnateProblem {
    num_cols: usize,
    weights: Vec<u32>,
    rows: Vec<BitSet>,
    node_limit: u64,
}

/// Default branch-and-bound node budget; generous for the problem sizes the
/// encoder produces.
const DEFAULT_NODE_LIMIT: u64 = 5_000_000;

/// Skip the quadratic column-dominance reduction above this column count.
const COL_DOMINANCE_LIMIT: usize = 6_000;

impl UnateProblem {
    /// A problem with `num_cols` unit-weight columns and no rows.
    pub fn new(num_cols: usize) -> Self {
        Self::with_weights(vec![1; num_cols])
    }

    /// A problem with explicit column weights.
    pub fn with_weights(weights: Vec<u32>) -> Self {
        UnateProblem {
            num_cols: weights.len(),
            weights,
            rows: Vec::new(),
            node_limit: DEFAULT_NODE_LIMIT,
        }
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds a row given the columns that cover it.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn add_row<I: IntoIterator<Item = usize>>(&mut self, cols: I) {
        self.rows.push(BitSet::from_indices(self.num_cols, cols));
    }

    /// Adds a row from a pre-built column set.
    ///
    /// # Panics
    ///
    /// Panics if the set's capacity differs from the column count.
    pub fn add_row_set(&mut self, cols: BitSet) {
        assert_eq!(cols.capacity(), self.num_cols, "row width mismatch");
        self.rows.push(cols);
    }

    /// Overrides the branch-and-bound node budget.
    pub fn set_node_limit(&mut self, limit: u64) {
        self.node_limit = limit;
    }

    /// Greedy cover: repeatedly choose the column covering the most
    /// still-uncovered rows per unit weight.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if some row has no columns.
    pub fn solve_greedy(&self) -> Result<Solution, SolveError> {
        if self.rows.iter().any(|r| r.is_empty()) {
            return Err(SolveError::Infeasible);
        }
        let mut uncovered: Vec<usize> = (0..self.rows.len()).collect();
        let mut chosen = Vec::new();
        let mut cost = 0u64;
        while !uncovered.is_empty() {
            let mut counts = vec![0u32; self.num_cols];
            for &r in &uncovered {
                for c in self.rows[r].iter() {
                    counts[c] += 1;
                }
            }
            let best = (0..self.num_cols)
                .filter(|&c| counts[c] > 0)
                .max_by(|&a, &b| {
                    // Compare counts[a]/w[a] vs counts[b]/w[b] without floats.
                    let lhs = counts[a] as u64 * self.weights[b] as u64;
                    let rhs = counts[b] as u64 * self.weights[a] as u64;
                    lhs.cmp(&rhs)
                })
                .expect("some column covers an uncovered row");
            chosen.push(best);
            cost += self.weights[best] as u64;
            uncovered.retain(|&r| !self.rows[r].contains(best));
        }
        Ok(Solution {
            columns: chosen,
            cost,
            optimal: false,
        })
    }

    /// Exact minimum-weight cover by branch and bound.
    ///
    /// Reductions: essential columns, row dominance, column dominance (when
    /// the column count is modest), and a maximal-independent-set lower
    /// bound. Branching expands the columns of a shortest row.
    ///
    /// If the node budget runs out the best feasible solution found so far
    /// is returned with `optimal = false`.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if some row has no columns.
    pub fn solve_exact(&self) -> Result<Solution, SolveError> {
        if self.rows.iter().any(|r| r.is_empty()) {
            return Err(SolveError::Infeasible);
        }
        // Root preprocessing: columns with identical row coverage are
        // interchangeable — keep one cheapest representative. (Prime sets
        // frequently contain many columns covering the same dichotomies.)
        let rows = self.merge_duplicate_columns();
        // Seed the upper bound with a greedy solution.
        let greedy = self.solve_greedy()?;
        let mut best = greedy.clone();
        let mut nodes = 0u64;
        let mut state = SearchState {
            problem: self,
            best_cost: greedy.cost,
            best_cols: greedy.columns,
            nodes: &mut nodes,
            exhausted: false,
        };
        state.branch(rows, Vec::new(), 0, 0);
        let optimal = !state.exhausted;
        best.columns = state.best_cols;
        best.cost = state.best_cost;
        best.optimal = optimal;
        Ok(best)
    }

    /// Removes, from a copy of the rows, every column whose row coverage
    /// equals a cheaper-or-equal column's coverage.
    fn merge_duplicate_columns(&self) -> Vec<BitSet> {
        use std::collections::HashMap;
        let mut col_rows: Vec<BitSet> = vec![BitSet::new(self.rows.len()); self.num_cols];
        for (r, row) in self.rows.iter().enumerate() {
            for c in row.iter() {
                col_rows[c].insert(r);
            }
        }
        let mut representative: HashMap<&BitSet, usize> = HashMap::new();
        let mut drop: Vec<usize> = Vec::new();
        for (c, rows_of_c) in col_rows.iter().enumerate() {
            if rows_of_c.is_empty() {
                continue;
            }
            match representative.get(rows_of_c) {
                None => {
                    representative.insert(rows_of_c, c);
                }
                Some(&keep) => {
                    if self.weights[c] < self.weights[keep] {
                        drop.push(keep);
                        representative.insert(rows_of_c, c);
                    } else {
                        drop.push(c);
                    }
                }
            }
        }
        let mut rows = self.rows.clone();
        for row in &mut rows {
            for &c in &drop {
                row.remove(c);
            }
        }
        rows
    }
}

struct SearchState<'a> {
    problem: &'a UnateProblem,
    best_cost: u64,
    best_cols: Vec<usize>,
    nodes: &'a mut u64,
    exhausted: bool,
}

impl SearchState<'_> {
    /// Greedy maximal set of pairwise-disjoint rows; the sum of each such
    /// row's cheapest column is a valid lower bound.
    fn mis_lower_bound(&self, rows: &[BitSet]) -> u64 {
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by_key(|&r| rows[r].count());
        let mut used = BitSet::new(self.problem.num_cols);
        let mut bound = 0u64;
        for r in order {
            if rows[r].is_disjoint(&used) {
                used.union_with(&rows[r]);
                bound += rows[r]
                    .iter()
                    .map(|c| self.problem.weights[c] as u64)
                    .min()
                    .unwrap_or(0);
            }
        }
        bound
    }

    fn branch(
        &mut self,
        mut rows: Vec<BitSet>,
        mut chosen: Vec<usize>,
        mut cost: u64,
        depth: usize,
    ) {
        *self.nodes += 1;
        if *self.nodes > self.problem.node_limit {
            self.exhausted = true;
            return;
        }
        // Reduction loop.
        loop {
            if cost >= self.best_cost {
                return;
            }
            if rows.is_empty() {
                self.best_cost = cost;
                self.best_cols = chosen;
                return;
            }
            if rows.iter().any(|r| r.is_empty()) {
                // Infeasible branch (can happen after column removal).
                return;
            }
            // Essential columns: rows with a single column.
            let mut changed = false;
            if let Some(r) = rows.iter().position(|r| r.count() == 1) {
                let c = rows[r].first().expect("count() == 1");
                cost += self.problem.weights[c] as u64;
                chosen.push(c);
                rows.retain(|row| !row.contains(c));
                changed = true;
            }
            if changed {
                continue;
            }
            // Row dominance: a row that is a superset of another is
            // implied by it.
            let before = rows.len();
            rows.sort_by_key(|r| r.count());
            rows.dedup();
            let mut keep = vec![true; rows.len()];
            for i in 0..rows.len() {
                if !keep[i] {
                    continue;
                }
                for j in (i + 1)..rows.len() {
                    if keep[j] && rows[i].is_subset(&rows[j]) {
                        keep[j] = false;
                    }
                }
            }
            let mut it = keep.iter();
            rows.retain(|_| *it.next().unwrap());
            if rows.len() != before {
                continue;
            }
            // Column dominance (skipped for very wide problems): remove a
            // column whose row set is a subset of a cheaper-or-equal
            // column's row set.
            let mut active = BitSet::new(self.problem.num_cols);
            for r in &rows {
                active.union_with(r);
            }
            let active_cols: Vec<usize> = active.iter().collect();
            let limit = if depth == 0 {
                COL_DOMINANCE_LIMIT
            } else {
                COL_DOMINANCE_LIMIT / 8
            };
            if active_cols.len() <= limit {
                let mut col_rows: Vec<(usize, BitSet)> = active_cols
                    .iter()
                    .map(|&c| {
                        let mut s = BitSet::new(rows.len());
                        for (i, r) in rows.iter().enumerate() {
                            if r.contains(c) {
                                s.insert(i);
                            }
                        }
                        (c, s)
                    })
                    .collect();
                // Sort by descending row count so dominators come first.
                col_rows.sort_by_key(|(_, rows)| std::cmp::Reverse(rows.count()));
                let mut removed = Vec::new();
                for i in 0..col_rows.len() {
                    let (ci, ref si) = col_rows[i];
                    if removed.contains(&ci) {
                        continue;
                    }
                    for item in col_rows.iter().skip(i + 1) {
                        let (cj, ref sj) = *item;
                        if removed.contains(&cj) {
                            continue;
                        }
                        if sj.is_subset(si) && self.problem.weights[ci] <= self.problem.weights[cj]
                        {
                            removed.push(cj);
                        }
                    }
                }
                if !removed.is_empty() {
                    for row in &mut rows {
                        for &c in &removed {
                            row.remove(c);
                        }
                    }
                    continue;
                }
            }
            break;
        }
        if rows.is_empty() {
            if cost < self.best_cost {
                self.best_cost = cost;
                self.best_cols = chosen;
            }
            return;
        }
        // Lower bound.
        if cost + self.mis_lower_bound(&rows) >= self.best_cost {
            return;
        }
        // Branch on the columns of a shortest row: one of them must be in
        // any cover.
        let pivot = rows
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.count())
            .map(|(i, _)| i)
            .expect("rows non-empty");
        let mut cols: Vec<usize> = rows[pivot].iter().collect();
        // Try the most-covering column first for a quick strong bound.
        cols.sort_by_key(|&c| std::cmp::Reverse(rows.iter().filter(|r| r.contains(c)).count()));
        let mut excluded: Vec<usize> = Vec::new();
        for c in cols {
            let mut sub_rows: Vec<BitSet> =
                rows.iter().filter(|r| !r.contains(c)).cloned().collect();
            // Columns already tried at this node are excluded from the
            // subtree (they would revisit the same covers).
            for row in &mut sub_rows {
                for &e in &excluded {
                    row.remove(e);
                }
            }
            let mut sub_chosen = chosen.clone();
            sub_chosen.push(c);
            self.branch(
                sub_rows,
                sub_chosen,
                cost + self.problem.weights[c] as u64,
                depth + 1,
            );
            if *self.nodes > self.problem.node_limit {
                self.exhausted = true;
                return;
            }
            excluded.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_problem_has_empty_cover() {
        let p = UnateProblem::new(3);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 0);
        assert!(sol.columns.is_empty());
        assert!(sol.optimal);
    }

    #[test]
    fn infeasible_row() {
        let mut p = UnateProblem::new(2);
        p.add_row([0]);
        p.add_row(std::iter::empty());
        assert_eq!(p.solve_exact(), Err(SolveError::Infeasible));
        assert_eq!(p.solve_greedy(), Err(SolveError::Infeasible));
    }

    #[test]
    fn essential_column_is_forced() {
        let mut p = UnateProblem::new(3);
        p.add_row([2]);
        p.add_row([0, 2]);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.columns, vec![2]);
        assert_eq!(sol.cost, 1);
    }

    #[test]
    fn weighted_prefers_cheap_pair() {
        let mut p = UnateProblem::with_weights(vec![1, 10, 1]);
        p.add_row([0, 1]);
        p.add_row([1, 2]);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 2);
        let mut cols = sol.columns;
        cols.sort();
        assert_eq!(cols, vec![0, 2]);
    }

    #[test]
    fn unit_weights_prefer_single_column() {
        let mut p = UnateProblem::new(3);
        p.add_row([0, 1]);
        p.add_row([1, 2]);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 1);
        assert_eq!(sol.columns, vec![1]);
    }

    #[test]
    fn greedy_is_feasible() {
        let mut p = UnateProblem::new(5);
        p.add_row([0, 1]);
        p.add_row([1, 2]);
        p.add_row([3]);
        p.add_row([2, 4]);
        let sol = p.solve_greedy().unwrap();
        for r in 0..p.num_rows() {
            assert!(sol.columns.iter().any(|&c| p.rows[r].contains(c)));
        }
    }

    /// Brute force minimum cover by subset enumeration.
    fn brute_force(p: &UnateProblem) -> Option<u64> {
        let n = p.num_cols;
        assert!(n <= 16);
        let mut best: Option<u64> = None;
        'outer: for mask in 0u32..(1 << n) {
            for r in &p.rows {
                if !r.iter().any(|c| mask & (1 << c) != 0) {
                    continue 'outer;
                }
            }
            let cost: u64 = (0..n)
                .filter(|&c| mask & (1 << c) != 0)
                .map(|c| p.weights[c] as u64)
                .sum();
            best = Some(best.map_or(cost, |b: u64| b.min(cost)));
        }
        best
    }

    #[test]
    fn exact_matches_brute_force_on_fixed_cases() {
        let cases: Vec<(usize, Vec<Vec<usize>>)> = vec![
            (4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]),
            (
                5,
                vec![
                    vec![0, 1, 2],
                    vec![2, 3],
                    vec![3, 4],
                    vec![0, 4],
                    vec![1, 3],
                ],
            ),
            (
                6,
                vec![vec![0], vec![1, 2], vec![2, 3, 4], vec![4, 5], vec![1, 5]],
            ),
        ];
        for (n, rows) in cases {
            let mut p = UnateProblem::new(n);
            for r in rows {
                p.add_row(r);
            }
            let sol = p.solve_exact().unwrap();
            assert!(sol.optimal);
            assert_eq!(Some(sol.cost), brute_force(&p));
        }
    }

    #[test]
    fn solution_covers_all_rows() {
        let mut p = UnateProblem::new(8);
        for i in 0..8 {
            p.add_row([i, (i + 3) % 8]);
        }
        let sol = p.solve_exact().unwrap();
        for r in &p.rows {
            assert!(sol.columns.iter().any(|&c| r.contains(c)));
        }
    }
}
