//! Exact and greedy unate covering.

use crate::{CancelToken, CoverStats, Interrupt, Parallelism, Solution, SolveError};
use ioenc_bitset::BitSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A unate (set-) covering problem: choose a minimum-weight set of columns
/// such that every row contains at least one chosen column.
///
/// Rows are sets of column indices. Weights default to 1.
///
/// # Examples
///
/// ```
/// use ioenc_cover::UnateProblem;
///
/// let mut p = UnateProblem::with_weights(vec![1, 10, 1]);
/// p.add_row([0, 1]);
/// p.add_row([1, 2]);
/// // Column 1 alone covers both rows, but columns {0, 2} are cheaper.
/// let sol = p.solve_exact().unwrap();
/// assert_eq!(sol.cost, 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnateProblem {
    num_cols: usize,
    weights: Vec<u32>,
    rows: Vec<BitSet>,
    node_limit: u64,
    work_budget: Option<u64>,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    parallelism: Parallelism,
    warm_start: Option<Vec<usize>>,
    certified_lb: Option<u64>,
    scratch_reuse: bool,
}

/// Default branch-and-bound node budget; generous for the problem sizes the
/// encoder produces.
const DEFAULT_NODE_LIMIT: u64 = 5_000_000;

/// Skip the quadratic column-dominance reduction above this column count.
const COL_DOMINANCE_LIMIT: usize = 6_000;

/// Subproblems the deterministic root expansion aims for. Fixed (not a
/// function of the thread count) so every [`Parallelism`] setting merges
/// the same task pool.
const TASK_TARGET: usize = 32;

/// Nodes the root expansion may pop before giving up on reaching
/// [`TASK_TARGET`].
const EXPANSION_BUDGET: u64 = 256;

/// Merge-order sentinel for the greedy fallback solution: compares after
/// every real branch path (whose ranks are always `< u32::MAX`), so a
/// search-found solution of equal cost always wins.
const GREEDY_SENTINEL: &[u32] = &[u32::MAX, 0];

/// Merge-order sentinel for a repaired warm-start incumbent: after the
/// greedy sentinel, so seeding can tighten the bound without ever changing
/// which solution is returned when costs tie.
const INCUMBENT_SENTINEL: &[u32] = &[u32::MAX, 1];

impl UnateProblem {
    /// A problem with `num_cols` unit-weight columns and no rows.
    pub fn new(num_cols: usize) -> Self {
        Self::with_weights(vec![1; num_cols])
    }

    /// A problem with explicit column weights.
    pub fn with_weights(weights: Vec<u32>) -> Self {
        UnateProblem {
            num_cols: weights.len(),
            weights,
            rows: Vec::new(),
            node_limit: DEFAULT_NODE_LIMIT,
            work_budget: None,
            cancel: None,
            deadline: None,
            parallelism: Parallelism::default(),
            warm_start: None,
            certified_lb: None,
            scratch_reuse: true,
        }
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds a row given the columns that cover it.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn add_row<I: IntoIterator<Item = usize>>(&mut self, cols: I) {
        self.rows.push(BitSet::from_indices(self.num_cols, cols));
    }

    /// Adds a row from a pre-built column set.
    ///
    /// # Panics
    ///
    /// Panics if the set's capacity differs from the column count.
    pub fn add_row_set(&mut self, cols: BitSet) {
        assert_eq!(
            cols.capacity(),
            self.num_cols,
            "row {} width mismatch: set capacity {} vs {} problem columns",
            self.rows.len(),
            cols.capacity(),
            self.num_cols,
        );
        self.rows.push(cols);
    }

    /// Overrides the branch-and-bound node budget.
    pub fn set_node_limit(&mut self, limit: u64) {
        self.node_limit = limit;
    }

    /// Enables *strict budget mode* with the given node cap (`None`
    /// disables it again).
    ///
    /// Strict mode differs from [`set_node_limit`](Self::set_node_limit)
    /// in two ways. First, exhausting the cap is an error
    /// ([`SolveError::Budget`]) even when a feasible cover was found, so a
    /// degradation ladder can fall back to a cheaper method instead of
    /// silently accepting a non-optimal cover. Second, workers prune
    /// against the *fixed* bound computed by the deterministic root
    /// expansion (plus their task-local best) rather than the shared
    /// atomic bound, making the explored node set — and therefore budget
    /// exhaustion itself — bit-identical across all [`Parallelism`]
    /// settings. When the search completes within the budget it returns
    /// the same optimal solution as the unrestricted search.
    pub fn set_work_budget(&mut self, budget: Option<u64>) {
        self.work_budget = budget;
    }

    /// Installs a cooperative cancellation token, checked every 256 nodes.
    pub fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// Installs a wall-clock deadline, checked every 256 nodes.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Sets the thread policy for [`solve_exact`](Self::solve_exact).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The configured thread policy.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Seeds the exact search with a warm-start incumbent: a set of
    /// columns believed to (nearly) cover every row, typically a previous
    /// solution of a closely related instance. Columns covering no row are
    /// dropped, duplicates are ignored, and any uncovered rows are
    /// repaired with their cheapest column, deterministically; the result
    /// seeds the initial upper bound alongside the greedy cover.
    ///
    /// Because the search returns the minimum-cost solution with the
    /// lexicographically least branch path — an intrinsic property of the
    /// problem, not of the search schedule — a warm start can only shrink
    /// the explored tree, never change the returned solution, provided the
    /// search completes without exhausting its node budget. (The incumbent
    /// itself is returned only when the search finds nothing at least as
    /// good, which a completed search always does.)
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn set_warm_start(&mut self, columns: Option<Vec<usize>>) {
        if let Some(cols) = &columns {
            for &c in cols {
                assert!(
                    c < self.num_cols,
                    "warm-start column {c} out of range {}",
                    self.num_cols
                );
            }
        }
        self.warm_start = columns;
    }

    /// Installs a certified lower bound on the optimal cost, e.g. derived
    /// from a previous search's optimality certificate on a provably
    /// harder instance. The bound is *only* used to mark a budget-stopped
    /// solution whose cost equals it as optimal; it never steers the
    /// search, so an (erroneously) low bound is harmless and a correct one
    /// cannot change the returned columns.
    pub fn set_certified_lower_bound(&mut self, lb: Option<u64>) {
        self.certified_lb = lb;
    }

    /// Disables (or re-enables) the search arena's buffer recycling.
    ///
    /// With reuse off every node allocates fresh buffers, reproducing the
    /// pre-arena allocation behavior while executing the identical search;
    /// the differential test suite uses this to pin arena runs to
    /// allocation-per-node runs byte for byte. On by default.
    #[doc(hidden)]
    pub fn set_scratch_reuse(&mut self, on: bool) {
        self.scratch_reuse = on;
    }

    /// Greedy cover: repeatedly choose the column covering the most
    /// still-uncovered rows per unit weight.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if some row has no columns.
    pub fn solve_greedy(&self) -> Result<Solution, SolveError> {
        if self.rows.iter().any(|r| r.is_empty()) {
            return Err(SolveError::Infeasible);
        }
        let mut uncovered: Vec<usize> = (0..self.rows.len()).collect();
        let mut chosen = Vec::new();
        let mut cost = 0u64;
        // One counts buffer for the whole solve; rounds reset it in place.
        let mut counts = vec![0u32; self.num_cols];
        while !uncovered.is_empty() {
            counts.fill(0);
            for &r in &uncovered {
                self.rows[r].for_each_set(|c| counts[c] += 1);
            }
            let best = (0..self.num_cols)
                .filter(|&c| counts[c] > 0)
                .max_by(|&a, &b| {
                    // Compare counts[a]/w[a] vs counts[b]/w[b] without floats.
                    let lhs = counts[a] as u64 * self.weights[b] as u64;
                    let rhs = counts[b] as u64 * self.weights[a] as u64;
                    lhs.cmp(&rhs)
                })
                .unwrap_or(0); // unreachable: an uncovered row exists and every
                               // row was built non-empty, so some count > 0
            chosen.push(best);
            cost += self.weights[best] as u64;
            uncovered.retain(|&r| !self.rows[r].contains(best));
        }
        Ok(Solution {
            columns: chosen,
            cost,
            optimal: false,
        })
    }

    /// Exact minimum-weight cover by branch and bound.
    ///
    /// Reductions: essential columns, row dominance, column dominance (when
    /// the column count is modest), and a maximal-independent-set lower
    /// bound whose witness is carried to child nodes as a pre-reduction
    /// prune. Branching expands the columns of a shortest row. The search
    /// runs over a deterministic subproblem pool swept by the configured
    /// [`Parallelism`]; the returned solution is the minimum-cost cover
    /// with the lexicographically least branch path, which is identical
    /// for every thread count and every valid seeded bound.
    ///
    /// If the node budget runs out the best feasible solution found so far
    /// is returned with `optimal = false`.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if some row has no columns.
    pub fn solve_exact(&self) -> Result<Solution, SolveError> {
        self.solve_exact_with_stats().map(|(sol, _)| sol)
    }

    /// Like [`solve_exact`](Self::solve_exact), also returning search
    /// counters.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if some row has no columns;
    /// [`SolveError::Budget`] when a strict work budget
    /// ([`set_work_budget`](Self::set_work_budget)) expires;
    /// [`SolveError::Interrupted`] on cancellation or deadline expiry.
    pub fn solve_exact_with_stats(&self) -> Result<(Solution, CoverStats), SolveError> {
        if self.rows.iter().any(|r| r.is_empty()) {
            return Err(SolveError::Infeasible);
        }
        let strict = self.work_budget.is_some();
        let node_limit = self.work_budget.unwrap_or(self.node_limit);
        let interrupt = Interrupt {
            cancel: self.cancel.clone(),
            deadline: self.deadline,
        };
        // Root preprocessing: columns with identical row coverage are
        // interchangeable — keep one cheapest representative. (Prime sets
        // frequently contain many columns covering the same dichotomies.)
        let rows = self.merge_duplicate_columns();
        // Seed the upper bound with a greedy solution, tightened by the
        // repaired warm-start incumbent when one was supplied.
        let greedy = self.solve_greedy()?;
        let incumbent = self
            .warm_start
            .as_ref()
            .and_then(|cand| self.repair_incumbent(cand, &rows));

        let mut stats = CoverStats {
            threads: self.parallelism.threads(),
            ..CoverStats::default()
        };

        // Phase 1: deterministic breadth-first decomposition of the root.
        let root = Node {
            rows,
            chosen: Vec::new(),
            path: Vec::new(),
            cost: 0,
            depth: 0,
            seed_lb: 0,
        };
        let mut bound = greedy.cost;
        if let Some((icost, _)) = &incumbent {
            bound = bound.min(*icost);
        }
        let mut solved: Vec<(u64, Vec<usize>, Vec<u32>)> = Vec::new();
        let mut root_arena = SearchArena::new(self.num_cols, self.scratch_reuse);
        let tasks = match self.expand_tasks(
            root,
            &mut bound,
            &mut solved,
            &mut stats,
            node_limit,
            &interrupt,
            &mut root_arena,
        ) {
            Ok(tasks) => tasks,
            Err(()) => return Err(SolveError::Interrupted { stats }),
        };
        stats.tasks = tasks.len();

        // Phase 2: sweep the pool. Outside budget mode the workers share
        // one atomic upper bound; in strict budget mode each worker prunes
        // against the fixed phase-1 bound so the explored node set does not
        // depend on scheduling.
        let shared_bound = AtomicU64::new(bound);
        let budget = per_task_budget(node_limit, stats.nodes, tasks.len());
        let results = self.sweep_tasks(
            &tasks,
            (!strict).then_some(&shared_bound),
            bound,
            budget,
            stats.threads,
            &interrupt,
        );

        // Deterministic merge: min (cost, branch path); both fallback seeds
        // carry sentinel paths ordering after every search-found solution.
        let mut best: (u64, &[u32], &[usize]) = (greedy.cost, GREEDY_SENTINEL, &greedy.columns);
        if let Some((icost, icols)) = &incumbent {
            if (*icost, INCUMBENT_SENTINEL) < (best.0, best.1) {
                best = (*icost, INCUMBENT_SENTINEL, icols);
            }
        }
        for (cost, cols, path) in &solved {
            if (*cost, path.as_slice()) < (best.0, best.1) {
                best = (*cost, path, cols);
            }
        }
        let mut exhausted = false;
        let mut interrupted = false;
        for result in &results {
            stats.nodes += result.nodes;
            stats.prunes += result.prunes;
            exhausted |= result.exhausted;
            interrupted |= result.interrupted;
            if let Some((cost, path, cols)) = &result.best {
                if (*cost, path.as_slice()) < (best.0, best.1) {
                    best = (*cost, path, cols);
                }
            }
        }
        if interrupted {
            return Err(SolveError::Interrupted { stats });
        }
        if strict && exhausted {
            return Err(SolveError::Budget { stats });
        }
        // A budget-stopped search is still provably optimal when its best
        // cost meets a caller-certified lower bound.
        let optimal = !exhausted || self.certified_lb == Some(best.0);
        let solution = Solution {
            columns: best.2.to_vec(),
            cost: best.0,
            optimal,
        };
        Ok((solution, stats))
    }

    /// Turns warm-start candidate columns into a feasible cover of `rows`:
    /// drops useless and duplicate candidates, then covers every remaining
    /// uncovered row with its cheapest column (ties to the lowest index).
    fn repair_incumbent(&self, cand: &[usize], rows: &[BitSet]) -> Option<(u64, Vec<usize>)> {
        let mut sel: Vec<usize> = Vec::new();
        for &c in cand {
            if !sel.contains(&c) && rows.iter().any(|r| r.contains(c)) {
                sel.push(c);
            }
        }
        for r in rows {
            if sel.iter().any(|&c| r.contains(c)) {
                continue;
            }
            let mut cheapest: Option<usize> = None;
            r.for_each_set(|c| match cheapest {
                None => cheapest = Some(c),
                Some(b) if self.weights[c] < self.weights[b] => cheapest = Some(c),
                _ => {}
            });
            sel.push(cheapest?); // None: empty row, the instance is infeasible
        }
        let cost = sel.iter().map(|&c| self.weights[c] as u64).sum();
        Some((cost, sel))
    }

    /// Pops nodes breadth-first, reducing each and queueing its children,
    /// until the queue reaches [`TASK_TARGET`] or the expansion budget is
    /// spent. Fully sequential and deterministic. Subproblems solved
    /// outright are appended to `solved` and tighten `bound`. `Err(())`
    /// reports an interruption.
    #[allow(clippy::too_many_arguments)]
    fn expand_tasks(
        &self,
        root: Node,
        bound: &mut u64,
        solved: &mut Vec<(u64, Vec<usize>, Vec<u32>)>,
        stats: &mut CoverStats,
        node_limit: u64,
        interrupt: &Interrupt,
        arena: &mut SearchArena,
    ) -> Result<Vec<Node>, ()> {
        let mut queue: VecDeque<Node> = VecDeque::from([root]);
        let expansion_cap = EXPANSION_BUDGET.min(node_limit);
        while queue.len() < TASK_TARGET && stats.nodes < expansion_cap {
            let Some(mut node) = queue.pop_front() else {
                break;
            };
            if interrupt.check(stats.nodes) {
                return Err(());
            }
            stats.nodes += 1;
            match self.reduce_node(&mut node, *bound, &mut stats.prunes, arena) {
                Reduced::Solved => {
                    *bound = (*bound).min(node.cost);
                    solved.push((node.cost, node.chosen, node.path));
                }
                Reduced::Infeasible | Reduced::Pruned => {}
                Reduced::Open => {
                    for child in self.children_of(&node, arena) {
                        queue.push_back(child);
                    }
                }
            }
        }
        Ok(queue.into())
    }

    /// Runs every task through a sequential depth-first search, claiming
    /// tasks from a shared counter. With one thread the sweep runs inline.
    /// `shared_bound: None` selects strict budget mode: workers prune
    /// against `fixed_bound` plus their task-local best only.
    #[allow(clippy::too_many_arguments)]
    fn sweep_tasks(
        &self,
        tasks: &[Node],
        shared_bound: Option<&AtomicU64>,
        fixed_bound: u64,
        budget: u64,
        threads: usize,
        interrupt: &Interrupt,
    ) -> Vec<TaskResult> {
        let results: Vec<Mutex<TaskResult>> = tasks
            .iter()
            .map(|_| Mutex::new(TaskResult::default()))
            .collect();
        let next = AtomicUsize::new(0);
        let worker = || {
            // One arena per worker: scratch buffers and recycled node
            // buffers live for the worker's whole task sequence.
            let mut arena = SearchArena::new(self.num_cols, self.scratch_reuse);
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                let mut ctx = TaskCtx {
                    shared_bound,
                    fixed_bound,
                    result: TaskResult::default(),
                    budget,
                    interrupt,
                };
                self.dfs(task.clone(), &mut ctx, &mut arena);
                *results[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = ctx.result;
            }
        };
        let workers = threads.min(tasks.len().max(1));
        if workers <= 1 {
            worker();
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(worker);
                }
            });
        }
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect()
    }

    /// Per-task sequential branch and bound against the shared (or fixed)
    /// bound.
    fn dfs(&self, mut node: Node, ctx: &mut TaskCtx<'_>, arena: &mut SearchArena) {
        ctx.result.nodes += 1;
        if ctx.result.nodes > ctx.budget {
            ctx.result.exhausted = true;
            return;
        }
        if ctx.interrupt.check(ctx.result.nodes) {
            ctx.result.interrupted = true;
            return;
        }
        // Strict pruning against the shared bound is schedule-safe; the
        // task's own best additionally prunes at `>=` — it evolves inside
        // this task only, so the minimal-cost, least-path solution in the
        // task's subtree is still always reached, for any schedule. In
        // budget mode the shared bound is absent and the fixed phase-1
        // bound is used instead, making the node count schedule-independent.
        let shared = match ctx.shared_bound {
            Some(b) => b.load(Ordering::Relaxed),
            None => ctx.fixed_bound,
        };
        let local = ctx.result.best.as_ref().map_or(u64::MAX, |(c, _, _)| *c);
        let bound = shared.min(local.saturating_sub(1));
        match self.reduce_node(&mut node, bound, &mut ctx.result.prunes, arena) {
            Reduced::Solved => {
                ctx.record(node.cost, &node.chosen, &node.path);
                arena.recycle_node(node);
            }
            Reduced::Infeasible | Reduced::Pruned => arena.recycle_node(node),
            Reduced::Open => {
                let mut children = self.children_of(&node, arena);
                arena.recycle_node(node);
                for child in children.drain(..) {
                    self.dfs(child, ctx, arena);
                    if ctx.result.exhausted || ctx.result.interrupted {
                        break;
                    }
                }
                arena.recycle_children(children);
            }
        }
    }

    /// Applies the reduction loop (essentials, row dominance, column
    /// dominance) and the bound tests to one node.
    ///
    /// Pruning is strict (`>` against `bound`) so subtrees holding
    /// solutions *equal* to the bound survive — the keystone of
    /// schedule-independent results under a shared, concurrently-improving
    /// bound. For the same reason a node that is *not* pruned reduces to
    /// the same rows and chosen columns under every valid bound: the bound
    /// is consulted only by the prune tests, never by the reductions.
    ///
    /// On [`Reduced::Open`] the arena's `witness` holds the
    /// maximal-independent-set rows backing the lower bound, for
    /// [`children_of`](Self::children_of) to seed child pre-prunes.
    fn reduce_node(
        &self,
        node: &mut Node,
        bound: u64,
        prunes: &mut u64,
        arena: &mut SearchArena,
    ) -> Reduced {
        // Inherited-witness pre-prune: the parent's independent rows that
        // survive into this node already bound the remaining cost from
        // below, at zero cost before any reduction work.
        if node.cost.saturating_add(node.seed_lb) > bound {
            *prunes += 1;
            return Reduced::Pruned;
        }
        loop {
            if node.cost > bound {
                *prunes += 1;
                return Reduced::Pruned;
            }
            if node.rows.is_empty() {
                return Reduced::Solved;
            }
            if node.rows.iter().any(|r| r.is_empty()) {
                // Infeasible branch (can happen after column removal).
                return Reduced::Infeasible;
            }
            // Essential columns: rows with a single column.
            if let Some(r) = node.rows.iter().position(|r| r.count() == 1) {
                let Some(c) = node.rows[r].first() else {
                    continue; // unreachable: position() found count() == 1
                };
                node.cost += self.weights[c] as u64;
                node.chosen.push(c);
                node.rows.retain(|row| !row.contains(c));
                continue;
            }
            // Row dominance: a row that is a superset of another is
            // implied by it.
            let before = node.rows.len();
            node.rows.sort_by_key(|r| r.count());
            node.rows.dedup();
            let keep = &mut arena.keep;
            keep.clear();
            keep.resize(node.rows.len(), true);
            for i in 0..node.rows.len() {
                if !keep[i] {
                    continue;
                }
                for (j, k) in keep.iter_mut().enumerate().skip(i + 1) {
                    if *k && node.rows[i].is_subset(&node.rows[j]) {
                        *k = false;
                    }
                }
            }
            let mut i = 0;
            node.rows.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
            if node.rows.len() != before {
                continue;
            }
            // Column dominance (skipped for very wide problems): remove a
            // column whose row set is a subset of a cheaper-or-equal
            // column's row set. Field-wise destructuring hands out disjoint
            // borrows of the arena's scratch buffers.
            let SearchArena {
                active,
                col_rows,
                removed,
                ..
            } = &mut *arena;
            active.clear();
            for r in &node.rows {
                active.union_with(r);
            }
            let limit = if node.depth == 0 {
                COL_DOMINANCE_LIMIT
            } else {
                COL_DOMINANCE_LIMIT / 8
            };
            let active_count = active.count();
            if active_count <= limit {
                // (column, rows-of-column) pairs in arena scratch; the
                // nested BitSets are reset to this node's row count.
                col_rows.truncate(active_count);
                for (c, s) in col_rows.iter_mut() {
                    *c = 0;
                    s.reset(node.rows.len());
                }
                while col_rows.len() < active_count {
                    col_rows.push((0, BitSet::new(node.rows.len())));
                }
                let mut k = 0;
                active.for_each_set(|c| {
                    col_rows[k].0 = c;
                    k += 1;
                });
                for (i, r) in node.rows.iter().enumerate() {
                    for (c, s) in col_rows.iter_mut() {
                        if r.contains(*c) {
                            s.insert(i);
                        }
                    }
                }
                // Sort by descending row count so dominators come first.
                col_rows.sort_by_key(|(_, rows)| std::cmp::Reverse(rows.count()));
                removed.clear();
                for i in 0..col_rows.len() {
                    let (ci, ref si) = col_rows[i];
                    if removed.contains(&ci) {
                        continue;
                    }
                    for item in col_rows.iter().skip(i + 1) {
                        let (cj, ref sj) = *item;
                        if removed.contains(&cj) {
                            continue;
                        }
                        if sj.is_subset(si) && self.weights[ci] <= self.weights[cj] {
                            removed.push(cj);
                        }
                    }
                }
                if !removed.is_empty() {
                    for row in &mut node.rows {
                        for &c in removed.iter() {
                            row.remove(c);
                        }
                    }
                    continue;
                }
            }
            break;
        }
        // Lower bound (also strict); leaves the witness in the arena.
        if node.cost + self.mis_lower_bound(&node.rows, arena) > bound {
            *prunes += 1;
            return Reduced::Pruned;
        }
        Reduced::Open
    }

    /// Child subproblems branching on the columns of a shortest row, with
    /// already-tried columns excluded from later siblings. Child buffers
    /// come from the arena's pools; each child inherits a pre-reduction
    /// lower bound from the parent's surviving MIS witness rows.
    ///
    /// Must be called immediately after [`reduce_node`](Self::reduce_node)
    /// returned [`Reduced::Open`] for the same node, while the arena still
    /// holds that node's witness.
    fn children_of(&self, node: &Node, arena: &mut SearchArena) -> Vec<Node> {
        let pivot = node
            .rows
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.count())
            .map(|(i, _)| i)
            .unwrap_or(0); // children_of is only called on Open nodes,
                           // whose row list is non-empty
                           // Candidate columns with their coverage counts; most-covering
                           // first (ties to the lower column) for a quick strong bound.
        let branch = &mut arena.branch;
        branch.clear();
        node.rows[pivot].for_each_set(|c| branch.push((0u32, c as u32)));
        for r in &node.rows {
            for (count, c) in branch.iter_mut() {
                if r.contains(*c as usize) {
                    *count += 1;
                }
            }
        }
        branch.sort_by_key(|&(count, c)| (std::cmp::Reverse(count), c));

        let mut children = arena.alloc_children();
        children.reserve(arena.branch.len());
        let mut excluded = std::mem::take(&mut arena.excluded);
        debug_assert!(excluded.is_empty());
        for rank in 0..arena.branch.len() {
            let c = arena.branch[rank].1 as usize;
            // The surviving independent-witness rows lower-bound the
            // child's remaining cost before any of its own reduction work.
            let seed_lb: u64 = arena
                .witness
                .iter()
                .filter(|&&(r, _)| !node.rows[r as usize].contains(c))
                .map(|&(_, w)| w)
                .sum();
            let mut rows = arena.rows_pool.pop().unwrap_or_default();
            let mut n = 0;
            for r in &node.rows {
                if r.contains(c) {
                    continue;
                }
                if n < rows.len() {
                    rows[n].clone_from(r);
                } else {
                    rows.push(r.clone());
                }
                // Columns already tried at this node are excluded from the
                // subtree (they would revisit the same covers).
                for &e in &excluded {
                    rows[n].remove(e);
                }
                n += 1;
            }
            rows.truncate(n);
            let mut chosen = arena.cols_pool.pop().unwrap_or_default();
            chosen.clear();
            chosen.extend_from_slice(&node.chosen);
            chosen.push(c);
            let mut path = arena.path_pool.pop().unwrap_or_default();
            path.clear();
            path.extend_from_slice(&node.path);
            path.push(rank as u32);
            children.push(Node {
                rows,
                chosen,
                path,
                cost: node.cost + self.weights[c] as u64,
                depth: node.depth + 1,
                seed_lb,
            });
            excluded.push(c);
        }
        excluded.clear();
        arena.excluded = excluded;
        children
    }

    /// Greedy maximal set of pairwise-disjoint rows; the sum of each such
    /// row's cheapest column is a valid lower bound. The chosen rows and
    /// their cheapest-column weights (the *witness*) are left in
    /// `arena.witness` for child seeding: a row that survives into a child
    /// only shrinks (branch filtering and column exclusion remove
    /// candidates), so its recorded minimum stays a valid per-row bound
    /// and pairwise disjointness is preserved.
    fn mis_lower_bound(&self, rows: &[BitSet], arena: &mut SearchArena) -> u64 {
        let SearchArena {
            order,
            used,
            witness,
            ..
        } = &mut *arena;
        order.clear();
        order.extend(0..rows.len());
        order.sort_by_key(|&r| rows[r].count());
        used.clear();
        witness.clear();
        let mut bound = 0u64;
        for &r in order.iter() {
            if rows[r].is_disjoint(used) {
                used.union_with(&rows[r]);
                let mut min_w = u64::MAX;
                rows[r].for_each_set(|c| min_w = min_w.min(self.weights[c] as u64));
                let min_w = if min_w == u64::MAX { 0 } else { min_w };
                witness.push((r as u32, min_w));
                bound += min_w;
            }
        }
        bound
    }

    /// Benchmark-only entry point: the MIS lower bound over this problem's
    /// rows (with a fresh arena). Not part of the public API contract.
    #[doc(hidden)]
    pub fn mis_bound_for_bench(&self) -> u64 {
        let mut arena = SearchArena::new(self.num_cols, true);
        self.mis_lower_bound(&self.rows, &mut arena)
    }

    /// Removes, from a copy of the rows, every column whose row coverage
    /// equals a cheaper-or-equal column's coverage.
    fn merge_duplicate_columns(&self) -> Vec<BitSet> {
        use std::collections::HashMap;
        let mut col_rows: Vec<BitSet> = vec![BitSet::new(self.rows.len()); self.num_cols];
        for (r, row) in self.rows.iter().enumerate() {
            for c in row.iter() {
                col_rows[c].insert(r);
            }
        }
        let mut representative: HashMap<&BitSet, usize> = HashMap::new();
        let mut drop: Vec<usize> = Vec::new();
        for (c, rows_of_c) in col_rows.iter().enumerate() {
            if rows_of_c.is_empty() {
                continue;
            }
            match representative.get(rows_of_c) {
                None => {
                    representative.insert(rows_of_c, c);
                }
                Some(&keep) => {
                    if self.weights[c] < self.weights[keep] {
                        drop.push(keep);
                        representative.insert(rows_of_c, c);
                    } else {
                        drop.push(c);
                    }
                }
            }
        }
        let mut rows = self.rows.clone();
        for row in &mut rows {
            for &c in &drop {
                row.remove(c);
            }
        }
        rows
    }
}

/// Splits the remaining node budget evenly over the task pool. The split
/// depends only on deterministic quantities, so budget exhaustion is
/// task-local.
fn per_task_budget(node_limit: u64, spent: u64, tasks: usize) -> u64 {
    (node_limit.saturating_sub(spent) / tasks.max(1) as u64).max(1)
}

/// A subproblem: remaining rows plus the partial cover that produced them.
#[derive(Debug, Clone)]
struct Node {
    rows: Vec<BitSet>,
    chosen: Vec<usize>,
    /// Branch ranks from the root — the schedule-independent merge
    /// tie-breaker. A node's path is determined by the problem alone
    /// (branch ordering never consults the bound), so the minimum
    /// `(cost, path)` solution is a property of the instance, not of the
    /// search schedule or of any valid seeded bound.
    path: Vec<u32>,
    cost: u64,
    depth: usize,
    /// Lower bound on the remaining cover cost inherited from the parent's
    /// MIS witness; valid before this node's own reductions run.
    seed_lb: u64,
}

/// Per-worker scratch: reusable buffers for the reduction loop plus pools
/// of recycled node buffers, so the steady-state search allocates nothing.
/// With `reuse` off the pools stay empty and every node allocates fresh —
/// the pre-arena behavior, kept as a differential-testing reference.
struct SearchArena {
    reuse: bool,
    rows_pool: Vec<Vec<BitSet>>,
    cols_pool: Vec<Vec<usize>>,
    path_pool: Vec<Vec<u32>>,
    children_pool: Vec<Vec<Node>>,
    /// Row-dominance keep flags.
    keep: Vec<bool>,
    /// Column-dominance removal list.
    removed: Vec<usize>,
    /// Branch columns already tried at the current node.
    excluded: Vec<usize>,
    /// Branch candidates as (coverage count, column).
    branch: Vec<(u32, u32)>,
    /// Column-dominance (column, rows-of-column) pairs.
    col_rows: Vec<(usize, BitSet)>,
    /// Columns still present in some row (capacity = problem columns).
    active: BitSet,
    /// MIS row visit order.
    order: Vec<usize>,
    /// Columns used by the MIS witness rows (capacity = problem columns).
    used: BitSet,
    /// MIS witness: (row index, cheapest column weight) per chosen row.
    witness: Vec<(u32, u64)>,
}

/// Recycled buffers kept per pool; beyond this they are simply dropped
/// (deep recursions return most buffers quickly, so the cap only guards
/// against pathological retention).
const POOL_CAP: usize = 256;

impl SearchArena {
    fn new(num_cols: usize, reuse: bool) -> Self {
        SearchArena {
            reuse,
            rows_pool: Vec::new(),
            cols_pool: Vec::new(),
            path_pool: Vec::new(),
            children_pool: Vec::new(),
            keep: Vec::new(),
            removed: Vec::new(),
            excluded: Vec::new(),
            branch: Vec::new(),
            col_rows: Vec::new(),
            active: BitSet::new(num_cols),
            order: Vec::new(),
            used: BitSet::new(num_cols),
            witness: Vec::new(),
        }
    }

    fn alloc_children(&mut self) -> Vec<Node> {
        self.children_pool.pop().unwrap_or_default()
    }

    fn recycle_children(&mut self, children: Vec<Node>) {
        debug_assert!(children.is_empty());
        if self.reuse && self.children_pool.len() < POOL_CAP {
            self.children_pool.push(children);
        }
    }

    fn recycle_node(&mut self, node: Node) {
        if !self.reuse {
            return;
        }
        if self.rows_pool.len() < POOL_CAP {
            self.rows_pool.push(node.rows);
        }
        if self.cols_pool.len() < POOL_CAP {
            self.cols_pool.push(node.chosen);
        }
        if self.path_pool.len() < POOL_CAP {
            self.path_pool.push(node.path);
        }
    }
}

enum Reduced {
    Solved,
    Infeasible,
    Pruned,
    Open,
}

#[derive(Debug, Default)]
struct TaskResult {
    /// Best solution in this task's subtree: (cost, branch path, columns).
    best: Option<(u64, Vec<u32>, Vec<usize>)>,
    nodes: u64,
    prunes: u64,
    exhausted: bool,
    interrupted: bool,
}

struct TaskCtx<'a> {
    /// `None` in strict budget mode (prune against `fixed_bound` only).
    shared_bound: Option<&'a AtomicU64>,
    fixed_bound: u64,
    result: TaskResult,
    budget: u64,
    interrupt: &'a Interrupt,
}

impl TaskCtx<'_> {
    fn record(&mut self, cost: u64, cols: &[usize], path: &[u32]) {
        let better = match &self.result.best {
            None => true,
            Some((bc, bp, _)) => (cost, path) < (*bc, bp.as_slice()),
        };
        if better {
            self.result.best = Some((cost, path.to_vec(), cols.to_vec()));
            if let Some(bound) = self.shared_bound {
                bound.fetch_min(cost, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_problem_has_empty_cover() {
        let p = UnateProblem::new(3);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 0);
        assert!(sol.columns.is_empty());
        assert!(sol.optimal);
    }

    #[test]
    fn infeasible_row() {
        let mut p = UnateProblem::new(2);
        p.add_row([0]);
        p.add_row(std::iter::empty());
        assert_eq!(p.solve_exact(), Err(SolveError::Infeasible));
        assert_eq!(p.solve_greedy(), Err(SolveError::Infeasible));
    }

    #[test]
    fn essential_column_is_forced() {
        let mut p = UnateProblem::new(3);
        p.add_row([2]);
        p.add_row([0, 2]);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.columns, vec![2]);
        assert_eq!(sol.cost, 1);
    }

    #[test]
    fn weighted_prefers_cheap_pair() {
        let mut p = UnateProblem::with_weights(vec![1, 10, 1]);
        p.add_row([0, 1]);
        p.add_row([1, 2]);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 2);
        let mut cols = sol.columns;
        cols.sort();
        assert_eq!(cols, vec![0, 2]);
    }

    #[test]
    fn unit_weights_prefer_single_column() {
        let mut p = UnateProblem::new(3);
        p.add_row([0, 1]);
        p.add_row([1, 2]);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 1);
        assert_eq!(sol.columns, vec![1]);
    }

    #[test]
    fn greedy_is_feasible() {
        let mut p = UnateProblem::new(5);
        p.add_row([0, 1]);
        p.add_row([1, 2]);
        p.add_row([3]);
        p.add_row([2, 4]);
        let sol = p.solve_greedy().unwrap();
        for r in 0..p.num_rows() {
            assert!(sol.columns.iter().any(|&c| p.rows[r].contains(c)));
        }
    }

    /// Brute force minimum cover by subset enumeration.
    fn brute_force(p: &UnateProblem) -> Option<u64> {
        let n = p.num_cols;
        assert!(n <= 16);
        let mut best: Option<u64> = None;
        'outer: for mask in 0u32..(1 << n) {
            for r in &p.rows {
                if !r.iter().any(|c| mask & (1 << c) != 0) {
                    continue 'outer;
                }
            }
            let cost: u64 = (0..n)
                .filter(|&c| mask & (1 << c) != 0)
                .map(|c| p.weights[c] as u64)
                .sum();
            best = Some(best.map_or(cost, |b: u64| b.min(cost)));
        }
        best
    }

    #[test]
    fn exact_matches_brute_force_on_fixed_cases() {
        let cases: Vec<(usize, Vec<Vec<usize>>)> = vec![
            (4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]),
            (
                5,
                vec![
                    vec![0, 1, 2],
                    vec![2, 3],
                    vec![3, 4],
                    vec![0, 4],
                    vec![1, 3],
                ],
            ),
            (
                6,
                vec![vec![0], vec![1, 2], vec![2, 3, 4], vec![4, 5], vec![1, 5]],
            ),
        ];
        for (n, rows) in cases {
            let mut p = UnateProblem::new(n);
            for r in rows {
                p.add_row(r);
            }
            let sol = p.solve_exact().unwrap();
            assert!(sol.optimal);
            assert_eq!(Some(sol.cost), brute_force(&p));
        }
    }

    #[test]
    fn solution_covers_all_rows() {
        let mut p = UnateProblem::new(8);
        for i in 0..8 {
            p.add_row([i, (i + 3) % 8]);
        }
        let sol = p.solve_exact().unwrap();
        for r in &p.rows {
            assert!(sol.columns.iter().any(|&c| r.contains(c)));
        }
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        // A ring structure with several equal-cost optima: the stress case
        // for deterministic tie-breaking.
        let mut p = UnateProblem::new(12);
        for i in 0..12 {
            p.add_row([i, (i + 4) % 12, (i + 7) % 12]);
        }
        let mut baseline = None;
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(1),
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let mut q = p.clone();
            q.set_parallelism(par);
            let sol = q.solve_exact().unwrap();
            match &baseline {
                None => baseline = Some(sol),
                Some(b) => assert_eq!(&sol, b, "{par:?} diverged"),
            }
        }
    }

    #[test]
    fn stats_report_search_effort() {
        let mut p = UnateProblem::new(10);
        for i in 0..10 {
            p.add_row([i, (i + 3) % 10]);
        }
        let (sol, stats) = p.solve_exact_with_stats().unwrap();
        assert!(sol.optimal);
        assert!(stats.nodes > 0);
        assert!(stats.threads >= 1);
    }

    #[test]
    fn node_limit_still_returns_feasible() {
        let mut p = UnateProblem::new(14);
        for i in 0..14 {
            p.add_row([i, (i + 5) % 14, (i + 9) % 14]);
        }
        p.set_node_limit(1);
        let sol = p.solve_exact().unwrap();
        for r in &p.rows {
            assert!(sol.columns.iter().any(|&c| r.contains(c)));
        }
    }

    #[test]
    fn work_budget_exhaustion_is_an_error_and_deterministic() {
        let mut p = UnateProblem::new(12);
        for i in 0..12 {
            p.add_row([i, (i + 4) % 12, (i + 7) % 12]);
        }
        p.set_work_budget(Some(8));
        let mut baseline = None;
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let mut q = p.clone();
            q.set_parallelism(par);
            let err = q.solve_exact_with_stats().unwrap_err();
            let SolveError::Budget { stats } = err else {
                panic!("expected Budget error, got {err:?}");
            };
            let counters = (stats.nodes, stats.prunes, stats.tasks);
            match &baseline {
                None => baseline = Some(counters),
                Some(b) => assert_eq!(&counters, b, "{par:?} diverged"),
            }
        }
    }

    #[test]
    fn ample_work_budget_matches_unrestricted_solution() {
        let mut p = UnateProblem::new(12);
        for i in 0..12 {
            p.add_row([i, (i + 4) % 12, (i + 7) % 12]);
        }
        let unrestricted = p.solve_exact().unwrap();
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
        ] {
            let mut q = p.clone();
            q.set_work_budget(Some(1_000_000));
            q.set_parallelism(par);
            let sol = q.solve_exact().unwrap();
            assert_eq!(sol, unrestricted, "{par:?} diverged");
        }
    }

    #[test]
    fn cancel_token_interrupts_search() {
        let mut p = UnateProblem::new(14);
        for i in 0..14 {
            p.add_row([i, (i + 5) % 14, (i + 9) % 14]);
        }
        let token = crate::CancelToken::new();
        token.cancel();
        p.set_cancel(Some(token));
        match p.solve_exact() {
            Err(SolveError::Interrupted { .. }) => {}
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }

    #[test]
    fn warm_start_never_changes_the_solution() {
        // Several equal-cost optima; any feasible warm start (including
        // junk that needs repair) must leave the returned columns
        // untouched because tie-breaking is by intrinsic branch path.
        let mut p = UnateProblem::new(12);
        for i in 0..12 {
            p.add_row([i, (i + 4) % 12, (i + 7) % 12]);
        }
        let baseline = p.solve_exact().unwrap();
        for warm in [
            vec![],
            vec![0],
            vec![0, 4, 8],
            (0..12).collect::<Vec<_>>(),
            baseline.columns.clone(),
        ] {
            let mut q = p.clone();
            q.set_warm_start(Some(warm.clone()));
            let sol = q.solve_exact().unwrap();
            assert_eq!(sol, baseline, "warm start {warm:?} changed the result");
        }
    }

    #[test]
    fn warm_start_with_certified_bound_is_optimal_under_budget() {
        // Exhaust the per-task budget immediately; with a warm start whose
        // repaired cost meets a certified lower bound, the result is still
        // marked optimal.
        let mut p = UnateProblem::new(6);
        p.add_row([0, 1]);
        p.add_row([2, 3]);
        p.add_row([4, 5]);
        let full = p.solve_exact().unwrap();
        assert_eq!(full.cost, 3);
        p.set_node_limit(1);
        p.set_warm_start(Some(full.columns.clone()));
        p.set_certified_lower_bound(Some(3));
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 3);
        assert!(sol.optimal, "certified bound must upgrade the flag");
    }

    #[test]
    fn scratch_reuse_toggle_is_invisible() {
        let mut p = UnateProblem::new(14);
        for i in 0..14 {
            p.add_row([i, (i + 5) % 14, (i + 9) % 14]);
        }
        let (with_arena, stats_a) = p.solve_exact_with_stats().unwrap();
        let mut q = p.clone();
        q.set_scratch_reuse(false);
        let (without, stats_b) = q.solve_exact_with_stats().unwrap();
        assert_eq!(with_arena, without);
        assert_eq!(
            (stats_a.nodes, stats_a.prunes),
            (stats_b.nodes, stats_b.prunes)
        );
    }

    #[test]
    #[should_panic(expected = "row 1 width mismatch")]
    fn add_row_set_names_the_row() {
        let mut p = UnateProblem::new(4);
        p.add_row_set(BitSet::new(4));
        p.add_row_set(BitSet::new(5));
    }

    #[test]
    #[should_panic(expected = "warm-start column 9 out of range")]
    fn warm_start_range_checked() {
        let mut p = UnateProblem::new(4);
        p.set_warm_start(Some(vec![9]));
    }
}
