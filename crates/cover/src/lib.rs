#![warn(missing_docs)]

//! Covering solvers for the `ioenc` encoding framework.
//!
//! The final step of exact encoding (Section 6.3 of Saldanha et al.) selects
//! a minimum set of prime encoding-dichotomies covering all initial
//! encoding-dichotomies — a *unate covering* problem. The general
//! abstraction of Section 4, and the distance-2 / non-face extensions of
//! Sections 8.2–8.3, require *binate covering*.
//!
//! * [`UnateProblem`] — exact branch-and-bound (essential columns, row and
//!   column dominance, maximal-independent-set lower bound) and a greedy
//!   heuristic.
//! * [`BinateProblem`] — exact branch-and-bound with unit propagation over
//!   clauses that may contain complemented columns.
//!
//! # Examples
//!
//! ```
//! use ioenc_cover::UnateProblem;
//!
//! // Three rows over four columns; {1, 2} is the unique minimum cover.
//! let mut p = UnateProblem::new(4);
//! p.add_row([0, 1]);
//! p.add_row([1, 3]);
//! p.add_row([2]);
//! let sol = p.solve_exact().expect("feasible");
//! let mut cols = sol.columns.clone();
//! cols.sort();
//! assert_eq!(cols, vec![1, 2]);
//! ```

mod binate;
mod unate;

pub use binate::{BinateProblem, Clause};
pub use unate::UnateProblem;

/// A covering solution: the selected columns and their total weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Selected column indices, in no particular order.
    pub columns: Vec<usize>,
    /// Sum of the selected columns' weights.
    pub cost: u64,
    /// `false` when a node limit stopped the search before optimality was
    /// proved; the solution is still feasible.
    pub optimal: bool,
}

/// Errors produced by the covering solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Some row (clause) cannot be satisfied by any column assignment.
    Infeasible,
    /// The node limit was exhausted before any feasible solution was found.
    NodeLimit,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "covering problem is infeasible"),
            SolveError::NodeLimit => {
                write!(f, "node limit reached before a feasible solution was found")
            }
        }
    }
}

impl std::error::Error for SolveError {}
