#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Covering solvers for the `ioenc` encoding framework.
//!
//! The final step of exact encoding (Section 6.3 of Saldanha et al.) selects
//! a minimum set of prime encoding-dichotomies covering all initial
//! encoding-dichotomies — a *unate covering* problem. The general
//! abstraction of Section 4, and the distance-2 / non-face extensions of
//! Sections 8.2–8.3, require *binate covering*.
//!
//! * [`UnateProblem`] — exact branch-and-bound (essential columns, row and
//!   column dominance, maximal-independent-set lower bound) and a greedy
//!   heuristic.
//! * [`BinateProblem`] — exact branch-and-bound with unit propagation over
//!   clauses that may contain complemented columns.
//!
//! # Parallel search
//!
//! Both exact solvers run a two-phase search: a deterministic breadth-first
//! expansion of the root into a fixed pool of subproblems, then a
//! work-stealing sweep over that pool in which every worker runs a
//! sequential depth-first search sharing one atomic upper bound. Pruning
//! against the shared bound is *strict* (`>` rather than `>=`), so any
//! subproblem whose subtree attains the global minimum always records its
//! minimum-cost solution with the lexicographically least *branch path*
//! (the sequence of branch ranks from the root — an intrinsic property of
//! the instance, independent of scheduling and of any valid seeded bound);
//! merging task results by `(cost, path)` therefore returns bit-identical
//! solutions for every [`Parallelism`] setting and under any warm-start
//! seeding. When a node budget expires the search stops early and only
//! then may the (still feasible, `optimal = false`) result depend on
//! scheduling.
//!
//! # Examples
//!
//! ```
//! use ioenc_cover::UnateProblem;
//!
//! // Three rows over four columns; {1, 2} is the unique minimum cover.
//! let mut p = UnateProblem::new(4);
//! p.add_row([0, 1]);
//! p.add_row([1, 3]);
//! p.add_row([2]);
//! let sol = p.solve_exact().expect("feasible");
//! let mut cols = sol.columns.clone();
//! cols.sort();
//! assert_eq!(cols, vec![1, 2]);
//! ```

mod binate;
mod unate;

pub use binate::{BinateProblem, Clause};
pub use unate::UnateProblem;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable cancellation token for cooperative interruption of the
/// exact solvers (and the encoders built on them).
///
/// Cloning shares the underlying flag; once [`cancel`](Self::cancel) is
/// called every holder observes the request at its next check point.
/// Cancellation is inherently wall-clock-dependent: unlike the
/// deterministic work budgets, *where* a search stops under cancellation
/// may vary run to run.
///
/// # Examples
///
/// ```
/// use ioenc_cover::CancelToken;
///
/// let token = CancelToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel();
/// assert!(shared.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; visible to every clone of the token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Cooperative interruption sources (cancel token, wall-clock deadline)
/// shared by both solvers. Checks are amortized: only every 256th node
/// looks at the clock or the flag.
#[derive(Debug, Clone, Default)]
pub(crate) struct Interrupt {
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) deadline: Option<Instant>,
}

impl Interrupt {
    fn enabled(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some()
    }

    /// An immediate (unamortized) check.
    pub(crate) fn tripped(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Amortized per-node check: consults the sources every 256th node.
    pub(crate) fn check(&self, nodes: u64) -> bool {
        self.enabled() && nodes & 0xFF == 0 && self.tripped()
    }
}

/// Thread-count policy for the exact solvers.
///
/// Results are bit-identical across all settings (see the crate-level
/// notes on parallel search); the setting only controls how many worker
/// threads sweep the subproblem pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use the machine's available parallelism, capped at 8 threads.
    #[default]
    Auto,
    /// Use exactly this many threads (0 is treated as 1).
    Fixed(usize),
    /// Single-threaded: never spawn worker threads.
    Off,
}

impl Parallelism {
    /// The worker-thread count this policy resolves to on this machine.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
        }
    }
}

/// Instrumentation counters from one exact solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverStats {
    /// Branch-and-bound nodes expanded (root expansion + all tasks).
    pub nodes: u64,
    /// Subtrees cut by the bound tests.
    pub prunes: u64,
    /// Subproblems in the deterministic root decomposition.
    pub tasks: usize,
    /// Worker threads used for the task sweep.
    pub threads: usize,
}

impl CoverStats {
    /// Sums another solve's counters into this one (thread/task counts take
    /// the maximum, so a pipeline of solves reports its widest stage).
    pub fn absorb(&mut self, other: &CoverStats) {
        self.nodes += other.nodes;
        self.prunes += other.prunes;
        self.tasks = self.tasks.max(other.tasks);
        self.threads = self.threads.max(other.threads);
    }
}

/// A covering solution: the selected columns and their total weight.
/// The default is the empty selection (no columns, zero cost, not
/// proved optimal).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Solution {
    /// Selected column indices, in no particular order.
    pub columns: Vec<usize>,
    /// Sum of the selected columns' weights.
    pub cost: u64,
    /// `false` when a node limit stopped the search before optimality was
    /// proved; the solution is still feasible.
    pub optimal: bool,
}

/// Errors produced by the covering solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Some row (clause) cannot be satisfied by any column assignment.
    Infeasible,
    /// The node limit was exhausted before any feasible solution was found.
    NodeLimit,
    /// A deterministic work budget (`set_work_budget`) expired. Unlike
    /// [`NodeLimit`](Self::NodeLimit), this is reported even when a feasible
    /// solution was found, so callers can fall back to a cheaper method; the
    /// counters in `stats` are bit-identical across thread counts.
    Budget {
        /// Work performed before the budget expired.
        stats: CoverStats,
    },
    /// A cancel token fired or a wall-clock deadline passed. The stop point
    /// is timing-dependent, so `stats` may vary run to run.
    Interrupted {
        /// Work performed before the interruption.
        stats: CoverStats,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "covering problem is infeasible"),
            SolveError::NodeLimit => {
                write!(f, "node limit reached before a feasible solution was found")
            }
            SolveError::Budget { stats } => {
                write!(f, "cover work budget exhausted after {} nodes", stats.nodes)
            }
            SolveError::Interrupted { stats } => {
                write!(f, "cover search interrupted after {} nodes", stats.nodes)
            }
        }
    }
}

impl std::error::Error for SolveError {}
