//! Exact binate covering (minimum-cost satisfying assignment of a
//! product-of-sums with positive and negative literals).

use crate::{CancelToken, CoverStats, Interrupt, Parallelism, Solution, SolveError};
use ioenc_bitset::BitSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A clause in a binate covering problem: satisfied when some column in
/// `pos` is *selected* or some column in `neg` is *rejected*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Columns that satisfy the clause when selected.
    pub pos: BitSet,
    /// Columns that satisfy the clause when rejected.
    pub neg: BitSet,
}

/// A binate covering problem over `num_cols` 0/1 columns: find the
/// minimum-weight selection of columns such that every clause holds
/// (Section 4 of the paper, and the distance-2 / non-face extensions of
/// Section 8).
///
/// # Examples
///
/// ```
/// use ioenc_cover::BinateProblem;
///
/// let mut p = BinateProblem::new(3);
/// p.add_clause([0, 1], []);   // select 0 or 1
/// p.add_clause([], [0]);      // do not select 0
/// let sol = p.solve_exact().unwrap();
/// assert_eq!(sol.columns, vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct BinateProblem {
    num_cols: usize,
    weights: Vec<u32>,
    clauses: Vec<Clause>,
    node_limit: u64,
    work_budget: Option<u64>,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    parallelism: Parallelism,
}

const DEFAULT_NODE_LIMIT: u64 = 5_000_000;

/// Subproblem-pool size for the deterministic root expansion; fixed so
/// every [`Parallelism`] setting merges the same pool.
const TASK_TARGET: usize = 32;

/// Nodes the root expansion may pop before giving up on the target.
const EXPANSION_BUDGET: u64 = 256;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Assign {
    Open,
    Selected,
    Rejected,
}

impl BinateProblem {
    /// A problem with `num_cols` unit-weight columns.
    pub fn new(num_cols: usize) -> Self {
        Self::with_weights(vec![1; num_cols])
    }

    /// A problem with explicit column weights.
    pub fn with_weights(weights: Vec<u32>) -> Self {
        BinateProblem {
            num_cols: weights.len(),
            weights,
            clauses: Vec::new(),
            node_limit: DEFAULT_NODE_LIMIT,
            work_budget: None,
            cancel: None,
            deadline: None,
            parallelism: Parallelism::default(),
        }
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause from iterators of positive and negative columns.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn add_clause<P, N>(&mut self, pos: P, neg: N)
    where
        P: IntoIterator<Item = usize>,
        N: IntoIterator<Item = usize>,
    {
        self.clauses.push(Clause {
            pos: BitSet::from_indices(self.num_cols, pos),
            neg: BitSet::from_indices(self.num_cols, neg),
        });
    }

    /// Overrides the branch-and-bound node budget.
    pub fn set_node_limit(&mut self, limit: u64) {
        self.node_limit = limit;
    }

    /// Enables *strict budget mode* with the given node cap (`None`
    /// disables it again). See [`UnateProblem::set_work_budget`] for the
    /// semantics: exhaustion becomes [`SolveError::Budget`] and the
    /// explored node set is bit-identical across all [`Parallelism`]
    /// settings.
    ///
    /// [`UnateProblem::set_work_budget`]: crate::UnateProblem::set_work_budget
    pub fn set_work_budget(&mut self, budget: Option<u64>) {
        self.work_budget = budget;
    }

    /// Installs a cooperative cancellation token, checked every 256 nodes.
    pub fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// Installs a wall-clock deadline, checked every 256 nodes.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Sets the thread policy for [`solve_exact`](Self::solve_exact).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The configured thread policy.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Exact minimum-weight satisfying selection, by branch and bound with
    /// unit propagation. The search sweeps a deterministic subproblem pool
    /// with the configured [`Parallelism`]; results are identical for
    /// every thread count.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if no selection satisfies all clauses;
    /// [`SolveError::NodeLimit`] if the budget expired with no feasible
    /// solution found (a best-effort feasible solution, when one was found,
    /// is returned with `optimal = false` instead).
    pub fn solve_exact(&self) -> Result<Solution, SolveError> {
        self.solve_exact_with_stats().map(|(sol, _)| sol)
    }

    /// Like [`solve_exact`](Self::solve_exact), also returning search
    /// counters.
    ///
    /// # Errors
    ///
    /// As for [`solve_exact`](Self::solve_exact).
    pub fn solve_exact_with_stats(&self) -> Result<(Solution, CoverStats), SolveError> {
        let strict = self.work_budget.is_some();
        let node_limit = self.work_budget.unwrap_or(self.node_limit);
        let interrupt = Interrupt {
            cancel: self.cancel.clone(),
            deadline: self.deadline,
        };
        let mut stats = CoverStats {
            threads: self.parallelism.threads(),
            ..CoverStats::default()
        };

        // Phase 1: deterministic breadth-first decomposition.
        let root = BNode {
            assign: vec![Assign::Open; self.num_cols],
            seq: 0,
        };
        let mut bound = u64::MAX;
        let mut solved: Vec<(u64, Vec<usize>, u64)> = Vec::new();
        let tasks = match self.expand_tasks(
            root,
            &mut bound,
            &mut solved,
            &mut stats,
            node_limit,
            &interrupt,
        ) {
            Ok(tasks) => tasks,
            Err(()) => return Err(SolveError::Interrupted { stats }),
        };
        stats.tasks = tasks.len();

        // Phase 2: the sweep — shared-bound outside budget mode, fixed
        // phase-1 bound inside it (see `UnateProblem::set_work_budget`).
        let shared_bound = AtomicU64::new(bound);
        let budget = (node_limit.saturating_sub(stats.nodes) / tasks.len().max(1) as u64).max(1);
        let results = self.sweep_tasks(
            &tasks,
            (!strict).then_some(&shared_bound),
            bound,
            budget,
            stats.threads,
            &interrupt,
        );

        let mut best: Option<(u64, u64, &Vec<usize>)> = None;
        for (cost, cols, seq) in &solved {
            if best.is_none_or(|(c, s, _)| (*cost, *seq) < (c, s)) {
                best = Some((*cost, *seq, cols));
            }
        }
        let mut exhausted = false;
        let mut interrupted = false;
        for (task, result) in tasks.iter().zip(&results) {
            stats.nodes += result.nodes;
            stats.prunes += result.prunes;
            exhausted |= result.exhausted;
            interrupted |= result.interrupted;
            if let Some((cost, cols)) = &result.best {
                if best.is_none_or(|(c, s, _)| (*cost, task.seq) < (c, s)) {
                    best = Some((*cost, task.seq, cols));
                }
            }
        }
        if interrupted {
            return Err(SolveError::Interrupted { stats });
        }
        if strict && exhausted {
            return Err(SolveError::Budget { stats });
        }
        match best {
            Some((cost, _, cols)) => Ok((
                Solution {
                    columns: cols.clone(),
                    cost,
                    optimal: !exhausted,
                },
                stats,
            )),
            None if exhausted => Err(SolveError::NodeLimit),
            None => Err(SolveError::Infeasible),
        }
    }

    /// Breadth-first root expansion; fully sequential and deterministic.
    /// Assignments solved by propagation alone land in `solved` and
    /// tighten `bound`. `Err(())` reports an interruption.
    fn expand_tasks(
        &self,
        root: BNode,
        bound: &mut u64,
        solved: &mut Vec<(u64, Vec<usize>, u64)>,
        stats: &mut CoverStats,
        node_limit: u64,
        interrupt: &Interrupt,
    ) -> Result<Vec<BNode>, ()> {
        let mut queue: VecDeque<BNode> = VecDeque::from([root]);
        let mut next_seq = 1u64;
        let expansion_cap = EXPANSION_BUDGET.min(node_limit);
        while queue.len() < TASK_TARGET && stats.nodes < expansion_cap {
            let Some(mut node) = queue.pop_front() else {
                break;
            };
            if interrupt.check(stats.nodes) {
                return Err(());
            }
            stats.nodes += 1;
            match self.reduce_node(&mut node, *bound, &mut stats.prunes) {
                BReduced::Solved(cost, cols) => {
                    *bound = (*bound).min(cost);
                    solved.push((cost, cols, node.seq));
                }
                BReduced::Conflict | BReduced::Pruned => {}
                BReduced::Open(col, prefer_select) => {
                    for assign in branch_order(prefer_select) {
                        let mut sub = node.assign.clone();
                        sub[col] = assign;
                        queue.push_back(BNode {
                            assign: sub,
                            seq: next_seq,
                        });
                        next_seq += 1;
                    }
                }
            }
        }
        Ok(queue.into())
    }

    #[allow(clippy::too_many_arguments)]
    fn sweep_tasks(
        &self,
        tasks: &[BNode],
        shared_bound: Option<&AtomicU64>,
        fixed_bound: u64,
        budget: u64,
        threads: usize,
        interrupt: &Interrupt,
    ) -> Vec<BTaskResult> {
        let results: Vec<Mutex<BTaskResult>> = tasks
            .iter()
            .map(|_| Mutex::new(BTaskResult::default()))
            .collect();
        let next = AtomicUsize::new(0);
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(task) = tasks.get(i) else { break };
            let mut ctx = BTaskCtx {
                shared_bound,
                fixed_bound,
                result: BTaskResult::default(),
                budget,
                interrupt,
            };
            self.dfs(task.clone(), &mut ctx);
            *results[i]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = ctx.result;
        };
        let workers = threads.min(tasks.len().max(1));
        if workers <= 1 {
            worker();
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(worker);
                }
            });
        }
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect()
    }

    fn dfs(&self, mut node: BNode, ctx: &mut BTaskCtx<'_>) {
        ctx.result.nodes += 1;
        if ctx.result.nodes > ctx.budget {
            ctx.result.exhausted = true;
            return;
        }
        if ctx.interrupt.check(ctx.result.nodes) {
            ctx.result.interrupted = true;
            return;
        }
        // Strict pruning against the shared bound is schedule-safe; the
        // task's own best additionally prunes at `>=` — it evolves inside
        // this task only, so the first minimal-cost solution in the task's
        // DFS order is still always reached, for any schedule. In budget
        // mode the shared bound is absent and the fixed phase-1 bound is
        // used instead, making the node count schedule-independent.
        let shared = match ctx.shared_bound {
            Some(b) => b.load(Ordering::Relaxed),
            None => ctx.fixed_bound,
        };
        let local = ctx.result.best.as_ref().map_or(u64::MAX, |(c, _)| *c);
        let bound = shared.min(local.saturating_sub(1));
        match self.reduce_node(&mut node, bound, &mut ctx.result.prunes) {
            BReduced::Solved(cost, cols) => ctx.record(cost, cols),
            BReduced::Conflict | BReduced::Pruned => {}
            BReduced::Open(col, prefer_select) => {
                for assign in branch_order(prefer_select) {
                    let mut sub = node.clone();
                    sub.assign[col] = assign;
                    self.dfs(sub, ctx);
                    if ctx.result.exhausted || ctx.result.interrupted {
                        return;
                    }
                }
            }
        }
    }

    /// Unit propagation to fixpoint, conflict detection, and the strict
    /// bound tests. An `Open` outcome names the branching literal: the
    /// first open literal (negative preferred) of the first open clause.
    fn reduce_node(&self, node: &mut BNode, bound: u64, prunes: &mut u64) -> BReduced {
        loop {
            let mut changed = false;
            for clause in &self.clauses {
                match clause_state(clause, &node.assign) {
                    ClauseState::Conflict => return BReduced::Conflict,
                    ClauseState::Unit(c, true) => {
                        node.assign[c] = Assign::Selected;
                        changed = true;
                    }
                    ClauseState::Unit(c, false) => {
                        node.assign[c] = Assign::Rejected;
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
        let cost = self.current_cost(&node.assign);
        // Strict pruning: subtrees matching the bound survive, which keeps
        // per-task results schedule-independent (see the crate docs).
        if cost.saturating_add(self.lower_bound(&node.assign)) > bound {
            *prunes += 1;
            return BReduced::Pruned;
        }
        let open_clause = self
            .clauses
            .iter()
            .find(|cl| matches!(clause_state(cl, &node.assign), ClauseState::Open));
        let Some(clause) = open_clause else {
            // Feasible: reject all remaining open columns (they only cost).
            let cols: Vec<usize> = node
                .assign
                .iter()
                .enumerate()
                .filter(|(_, a)| **a == Assign::Selected)
                .map(|(c, _)| c)
                .collect();
            return BReduced::Solved(cost, cols);
        };
        // Branch on an open literal of the chosen clause: prefer a negative
        // literal (rejection is free). A clause classified Open always has
        // one; if not (impossible), Conflict is the sound answer.
        clause
            .neg
            .iter()
            .find(|&c| node.assign[c] == Assign::Open)
            .map(|c| (c, false))
            .or_else(|| {
                clause
                    .pos
                    .iter()
                    .find(|&c| node.assign[c] == Assign::Open)
                    .map(|c| (c, true))
            })
            .map_or(BReduced::Conflict, |(col, prefer_select)| {
                BReduced::Open(col, prefer_select)
            })
    }

    fn current_cost(&self, assign: &[Assign]) -> u64 {
        assign
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Assign::Selected)
            .map(|(c, _)| self.weights[c] as u64)
            .sum()
    }

    /// Lower bound: greedy disjoint set of unsatisfied clauses whose open
    /// literals are all positive — each needs a distinct selection.
    fn lower_bound(&self, assign: &[Assign]) -> u64 {
        let mut used = BitSet::new(self.num_cols);
        let mut bound = 0u64;
        for clause in &self.clauses {
            if !matches!(
                clause_state(clause, assign),
                ClauseState::Open | ClauseState::Unit(..)
            ) {
                continue;
            }
            // Only clauses with no open negative literal force a selection.
            let neg_open = clause.neg.iter().any(|c| assign[c] == Assign::Open);
            if neg_open {
                continue;
            }
            let open_pos: Vec<usize> = clause
                .pos
                .iter()
                .filter(|&c| assign[c] == Assign::Open)
                .collect();
            if open_pos.is_empty() || open_pos.iter().any(|&c| used.contains(c)) {
                continue;
            }
            for &c in &open_pos {
                used.insert(c);
            }
            bound += open_pos
                .iter()
                .map(|&c| self.weights[c] as u64)
                .min()
                .unwrap_or(0);
        }
        bound
    }
}

fn branch_order(prefer_select: bool) -> [Assign; 2] {
    if prefer_select {
        [Assign::Selected, Assign::Rejected]
    } else {
        [Assign::Rejected, Assign::Selected]
    }
}

/// A subproblem: a partial assignment plus its creation order.
#[derive(Debug, Clone)]
struct BNode {
    assign: Vec<Assign>,
    seq: u64,
}

enum BReduced {
    Solved(u64, Vec<usize>),
    Conflict,
    Pruned,
    /// Branch on (column, prefer-select).
    Open(usize, bool),
}

#[derive(Debug, Default)]
struct BTaskResult {
    best: Option<(u64, Vec<usize>)>,
    nodes: u64,
    prunes: u64,
    exhausted: bool,
    interrupted: bool,
}

struct BTaskCtx<'a> {
    /// `None` in strict budget mode (prune against `fixed_bound` only).
    shared_bound: Option<&'a AtomicU64>,
    fixed_bound: u64,
    result: BTaskResult,
    budget: u64,
    interrupt: &'a Interrupt,
}

impl BTaskCtx<'_> {
    fn record(&mut self, cost: u64, cols: Vec<usize>) {
        let local = self.result.best.as_ref().map_or(u64::MAX, |(c, _)| *c);
        if cost < local {
            self.result.best = Some((cost, cols));
            if let Some(bound) = self.shared_bound {
                bound.fetch_min(cost, Ordering::Relaxed);
            }
        }
    }
}

enum ClauseState {
    Satisfied,
    Conflict,
    /// One open literal left: (column, must-select?)
    Unit(usize, bool),
    Open,
}

fn clause_state(clause: &Clause, assign: &[Assign]) -> ClauseState {
    let mut open: Option<(usize, bool)> = None;
    let mut open_count = 0;
    for c in clause.pos.iter() {
        match assign[c] {
            Assign::Selected => return ClauseState::Satisfied,
            Assign::Rejected => {}
            Assign::Open => {
                open = Some((c, true));
                open_count += 1;
            }
        }
    }
    for c in clause.neg.iter() {
        match assign[c] {
            Assign::Rejected => return ClauseState::Satisfied,
            Assign::Selected => {}
            Assign::Open => {
                open = Some((c, false));
                open_count += 1;
            }
        }
    }
    match open_count {
        0 => ClauseState::Conflict,
        // The counter and the witness move together, so `open` is
        // always `Some` here; a lost witness degrades to Open (sound:
        // the solver just branches instead of propagating).
        1 => open.map_or(ClauseState::Open, |(c, sel)| ClauseState::Unit(c, sel)),
        _ => ClauseState::Open,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_positive_reduces_to_unate() {
        let mut p = BinateProblem::new(3);
        p.add_clause([0, 1], []);
        p.add_clause([1, 2], []);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 1);
        assert_eq!(sol.columns, vec![1]);
    }

    #[test]
    fn negative_literal_blocks_column() {
        let mut p = BinateProblem::new(3);
        p.add_clause([0, 1], []);
        p.add_clause([], [0]);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.columns, vec![1]);
    }

    #[test]
    fn infeasible_contradiction() {
        let mut p = BinateProblem::new(1);
        p.add_clause([0], []);
        p.add_clause([], [0]);
        assert_eq!(p.solve_exact(), Err(SolveError::Infeasible));
    }

    #[test]
    fn implication_chains_propagate() {
        // 0 must be selected; selecting 0 forbids 1; clause (1 or 2) then
        // forces 2.
        let mut p = BinateProblem::new(3);
        p.add_clause([0], []);
        p.add_clause([1], [0]); // 0 selected -> 1 selected? no: clause = 1 ∨ ¬0
        p.add_clause([2], [1]);
        let sol = p.solve_exact().unwrap();
        // Optimal: select 0, then clause2 = 1 ∨ ¬0 forces 1, clause3 = 2 ∨ ¬1
        // forces 2 — cost 3. No cheaper assignment exists because clause 1
        // pins column 0.
        assert_eq!(sol.cost, 3);
    }

    #[test]
    fn weights_steer_choice() {
        let mut p = BinateProblem::with_weights(vec![5, 1, 1]);
        p.add_clause([0, 1], []);
        p.add_clause([0, 2], []);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 2);
        let mut cols = sol.columns;
        cols.sort();
        assert_eq!(cols, vec![1, 2]);
    }

    #[test]
    fn at_most_one_constraint() {
        // Cover two rows but columns 1 and 2 are mutually exclusive.
        let mut p = BinateProblem::new(4);
        p.add_clause([1, 2], []);
        p.add_clause([1, 3], []);
        p.add_clause([], [1, 2]); // not both 1 and 2
        let sol = p.solve_exact().unwrap();
        assert!(sol.cost <= 2);
        // Check the solution satisfies all clauses.
        let sel: Vec<bool> = (0..4).map(|c| sol.columns.contains(&c)).collect();
        assert!(sel[1] || sel[2]);
        assert!(sel[1] || sel[3]);
        assert!(!(sel[1] && sel[2]));
    }

    /// Brute force for cross-checking.
    fn brute_force(p: &BinateProblem) -> Option<u64> {
        let n = p.num_cols;
        assert!(n <= 16);
        let mut best: Option<u64> = None;
        'outer: for mask in 0u32..(1 << n) {
            for cl in &p.clauses {
                let ok = cl.pos.iter().any(|c| mask & (1 << c) != 0)
                    || cl.neg.iter().any(|c| mask & (1 << c) == 0);
                if !ok {
                    continue 'outer;
                }
            }
            let cost: u64 = (0..n)
                .filter(|&c| mask & (1 << c) != 0)
                .map(|c| p.weights[c] as u64)
                .sum();
            best = Some(best.map_or(cost, |b: u64| b.min(cost)));
        }
        best
    }

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        let mut p = BinateProblem::new(5);
        p.add_clause([0, 1], [2]);
        p.add_clause([2, 3], []);
        p.add_clause([4], [0, 3]);
        p.add_clause([1], [4]);
        let sol = p.solve_exact().unwrap();
        assert!(sol.optimal);
        assert_eq!(Some(sol.cost), brute_force(&p));
    }

    #[test]
    fn empty_problem_selects_nothing() {
        let p = BinateProblem::new(4);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 0);
        assert!(sol.columns.is_empty());
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let mut p = BinateProblem::new(10);
        for i in 0..10usize {
            p.add_clause([i, (i + 3) % 10], [(i + 5) % 10]);
        }
        p.add_clause([], [0, 5]);
        let mut baseline = None;
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(1),
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let mut q = p.clone();
            q.set_parallelism(par);
            let sol = q.solve_exact().unwrap();
            match &baseline {
                None => baseline = Some(sol),
                Some(b) => assert_eq!(&sol, b, "{par:?} diverged"),
            }
        }
    }

    #[test]
    fn stats_report_search_effort() {
        let mut p = BinateProblem::new(6);
        p.add_clause([0, 1], []);
        p.add_clause([2, 3], [1]);
        p.add_clause([4, 5], [3]);
        let (sol, stats) = p.solve_exact_with_stats().unwrap();
        assert!(sol.optimal);
        assert!(stats.nodes > 0);
        assert!(stats.threads >= 1);
    }

    #[test]
    fn work_budget_exhaustion_is_an_error_and_deterministic() {
        let mut p = BinateProblem::new(12);
        for i in 0..12usize {
            p.add_clause([i, (i + 3) % 12], [(i + 5) % 12]);
        }
        p.set_work_budget(Some(6));
        let mut baseline = None;
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let mut q = p.clone();
            q.set_parallelism(par);
            let err = q.solve_exact_with_stats().unwrap_err();
            let SolveError::Budget { stats } = err else {
                panic!("expected Budget error, got {err:?}");
            };
            let counters = (stats.nodes, stats.prunes, stats.tasks);
            match &baseline {
                None => baseline = Some(counters),
                Some(b) => assert_eq!(&counters, b, "{par:?} diverged"),
            }
        }
    }

    #[test]
    fn ample_work_budget_matches_unrestricted_solution() {
        let mut p = BinateProblem::new(10);
        for i in 0..10usize {
            p.add_clause([i, (i + 3) % 10], [(i + 5) % 10]);
        }
        let unrestricted = p.solve_exact().unwrap();
        let mut q = p.clone();
        q.set_work_budget(Some(1_000_000));
        assert_eq!(q.solve_exact().unwrap(), unrestricted);
    }
}
