//! Exact binate covering (minimum-cost satisfying assignment of a
//! product-of-sums with positive and negative literals).

use crate::{Solution, SolveError};
use ioenc_bitset::BitSet;

/// A clause in a binate covering problem: satisfied when some column in
/// `pos` is *selected* or some column in `neg` is *rejected*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Columns that satisfy the clause when selected.
    pub pos: BitSet,
    /// Columns that satisfy the clause when rejected.
    pub neg: BitSet,
}

/// A binate covering problem over `num_cols` 0/1 columns: find the
/// minimum-weight selection of columns such that every clause holds
/// (Section 4 of the paper, and the distance-2 / non-face extensions of
/// Section 8).
///
/// # Examples
///
/// ```
/// use ioenc_cover::BinateProblem;
///
/// let mut p = BinateProblem::new(3);
/// p.add_clause([0, 1], []);   // select 0 or 1
/// p.add_clause([], [0]);      // do not select 0
/// let sol = p.solve_exact().unwrap();
/// assert_eq!(sol.columns, vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct BinateProblem {
    num_cols: usize,
    weights: Vec<u32>,
    clauses: Vec<Clause>,
    node_limit: u64,
}

const DEFAULT_NODE_LIMIT: u64 = 5_000_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Assign {
    Open,
    Selected,
    Rejected,
}

impl BinateProblem {
    /// A problem with `num_cols` unit-weight columns.
    pub fn new(num_cols: usize) -> Self {
        Self::with_weights(vec![1; num_cols])
    }

    /// A problem with explicit column weights.
    pub fn with_weights(weights: Vec<u32>) -> Self {
        BinateProblem {
            num_cols: weights.len(),
            weights,
            clauses: Vec::new(),
            node_limit: DEFAULT_NODE_LIMIT,
        }
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause from iterators of positive and negative columns.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn add_clause<P, N>(&mut self, pos: P, neg: N)
    where
        P: IntoIterator<Item = usize>,
        N: IntoIterator<Item = usize>,
    {
        self.clauses.push(Clause {
            pos: BitSet::from_indices(self.num_cols, pos),
            neg: BitSet::from_indices(self.num_cols, neg),
        });
    }

    /// Overrides the branch-and-bound node budget.
    pub fn set_node_limit(&mut self, limit: u64) {
        self.node_limit = limit;
    }

    /// Exact minimum-weight satisfying selection, by branch and bound with
    /// unit propagation.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if no selection satisfies all clauses;
    /// [`SolveError::NodeLimit`] if the budget expired with no feasible
    /// solution found (a best-effort feasible solution, when one was found,
    /// is returned with `optimal = false` instead).
    pub fn solve_exact(&self) -> Result<Solution, SolveError> {
        let mut search = BinateSearch {
            problem: self,
            best: None,
            nodes: 0,
            exhausted: false,
        };
        let assign = vec![Assign::Open; self.num_cols];
        search.branch(assign);
        match search.best {
            Some((cost, cols)) => Ok(Solution {
                columns: cols,
                cost,
                optimal: !search.exhausted,
            }),
            None if search.exhausted => Err(SolveError::NodeLimit),
            None => Err(SolveError::Infeasible),
        }
    }
}

struct BinateSearch<'a> {
    problem: &'a BinateProblem,
    best: Option<(u64, Vec<usize>)>,
    nodes: u64,
    exhausted: bool,
}

enum ClauseState {
    Satisfied,
    Conflict,
    /// One open literal left: (column, must-select?)
    Unit(usize, bool),
    Open,
}

fn clause_state(clause: &Clause, assign: &[Assign]) -> ClauseState {
    let mut open: Option<(usize, bool)> = None;
    let mut open_count = 0;
    for c in clause.pos.iter() {
        match assign[c] {
            Assign::Selected => return ClauseState::Satisfied,
            Assign::Rejected => {}
            Assign::Open => {
                open = Some((c, true));
                open_count += 1;
            }
        }
    }
    for c in clause.neg.iter() {
        match assign[c] {
            Assign::Rejected => return ClauseState::Satisfied,
            Assign::Selected => {}
            Assign::Open => {
                open = Some((c, false));
                open_count += 1;
            }
        }
    }
    match open_count {
        0 => ClauseState::Conflict,
        1 => {
            let (c, sel) = open.expect("open literal recorded");
            ClauseState::Unit(c, sel)
        }
        _ => ClauseState::Open,
    }
}

impl BinateSearch<'_> {
    fn current_cost(&self, assign: &[Assign]) -> u64 {
        assign
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Assign::Selected)
            .map(|(c, _)| self.problem.weights[c] as u64)
            .sum()
    }

    /// Lower bound: greedy disjoint set of unsatisfied clauses whose open
    /// literals are all positive — each needs a distinct selection.
    fn lower_bound(&self, assign: &[Assign]) -> u64 {
        let mut used = BitSet::new(self.problem.num_cols);
        let mut bound = 0u64;
        for clause in &self.problem.clauses {
            if !matches!(
                clause_state(clause, assign),
                ClauseState::Open | ClauseState::Unit(..)
            ) {
                continue;
            }
            // Only clauses with no open negative literal force a selection.
            let neg_open = clause.neg.iter().any(|c| assign[c] == Assign::Open);
            if neg_open {
                continue;
            }
            let open_pos: Vec<usize> = clause
                .pos
                .iter()
                .filter(|&c| assign[c] == Assign::Open)
                .collect();
            if open_pos.is_empty() || open_pos.iter().any(|&c| used.contains(c)) {
                continue;
            }
            for &c in &open_pos {
                used.insert(c);
            }
            bound += open_pos
                .iter()
                .map(|&c| self.problem.weights[c] as u64)
                .min()
                .unwrap_or(0);
        }
        bound
    }

    fn branch(&mut self, mut assign: Vec<Assign>) {
        self.nodes += 1;
        if self.nodes > self.problem.node_limit {
            self.exhausted = true;
            return;
        }
        // Unit propagation to fixpoint.
        loop {
            let mut changed = false;
            for clause in &self.problem.clauses {
                match clause_state(clause, &assign) {
                    ClauseState::Conflict => return,
                    ClauseState::Unit(c, true) => {
                        assign[c] = Assign::Selected;
                        changed = true;
                    }
                    ClauseState::Unit(c, false) => {
                        assign[c] = Assign::Rejected;
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
        let cost = self.current_cost(&assign);
        let best_cost = self.best.as_ref().map_or(u64::MAX, |(c, _)| *c);
        if cost + self.lower_bound(&assign) >= best_cost {
            return;
        }
        // All clauses satisfied?
        let open_clause = self
            .problem
            .clauses
            .iter()
            .find(|cl| matches!(clause_state(cl, &assign), ClauseState::Open));
        let Some(clause) = open_clause else {
            // Feasible: reject all remaining open columns (they only cost).
            let cols: Vec<usize> = assign
                .iter()
                .enumerate()
                .filter(|(_, a)| **a == Assign::Selected)
                .map(|(c, _)| c)
                .collect();
            if cost < best_cost {
                self.best = Some((cost, cols));
            }
            return;
        };
        // Branch on an open literal of the chosen clause: prefer a negative
        // literal (rejection is free).
        let lit = clause
            .neg
            .iter()
            .find(|&c| assign[c] == Assign::Open)
            .map(|c| (c, false))
            .or_else(|| {
                clause
                    .pos
                    .iter()
                    .find(|&c| assign[c] == Assign::Open)
                    .map(|c| (c, true))
            })
            .expect("open clause has an open literal");
        let (col, prefer_select) = lit;
        let order = if prefer_select {
            [Assign::Selected, Assign::Rejected]
        } else {
            [Assign::Rejected, Assign::Selected]
        };
        for a in order {
            let mut sub = assign.clone();
            sub[col] = a;
            self.branch(sub);
            if self.exhausted {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_positive_reduces_to_unate() {
        let mut p = BinateProblem::new(3);
        p.add_clause([0, 1], []);
        p.add_clause([1, 2], []);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 1);
        assert_eq!(sol.columns, vec![1]);
    }

    #[test]
    fn negative_literal_blocks_column() {
        let mut p = BinateProblem::new(3);
        p.add_clause([0, 1], []);
        p.add_clause([], [0]);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.columns, vec![1]);
    }

    #[test]
    fn infeasible_contradiction() {
        let mut p = BinateProblem::new(1);
        p.add_clause([0], []);
        p.add_clause([], [0]);
        assert_eq!(p.solve_exact(), Err(SolveError::Infeasible));
    }

    #[test]
    fn implication_chains_propagate() {
        // 0 must be selected; selecting 0 forbids 1; clause (1 or 2) then
        // forces 2.
        let mut p = BinateProblem::new(3);
        p.add_clause([0], []);
        p.add_clause([1], [0]); // 0 selected -> 1 selected? no: clause = 1 ∨ ¬0
        p.add_clause([2], [1]);
        let sol = p.solve_exact().unwrap();
        // Optimal: select 0, then clause2 = 1 ∨ ¬0 forces 1, clause3 = 2 ∨ ¬1
        // forces 2 — cost 3. No cheaper assignment exists because clause 1
        // pins column 0.
        assert_eq!(sol.cost, 3);
    }

    #[test]
    fn weights_steer_choice() {
        let mut p = BinateProblem::with_weights(vec![5, 1, 1]);
        p.add_clause([0, 1], []);
        p.add_clause([0, 2], []);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 2);
        let mut cols = sol.columns;
        cols.sort();
        assert_eq!(cols, vec![1, 2]);
    }

    #[test]
    fn at_most_one_constraint() {
        // Cover two rows but columns 1 and 2 are mutually exclusive.
        let mut p = BinateProblem::new(4);
        p.add_clause([1, 2], []);
        p.add_clause([1, 3], []);
        p.add_clause([], [1, 2]); // not both 1 and 2
        let sol = p.solve_exact().unwrap();
        assert!(sol.cost <= 2);
        // Check the solution satisfies all clauses.
        let sel: Vec<bool> = (0..4).map(|c| sol.columns.contains(&c)).collect();
        assert!(sel[1] || sel[2]);
        assert!(sel[1] || sel[3]);
        assert!(!(sel[1] && sel[2]));
    }

    /// Brute force for cross-checking.
    fn brute_force(p: &BinateProblem) -> Option<u64> {
        let n = p.num_cols;
        assert!(n <= 16);
        let mut best: Option<u64> = None;
        'outer: for mask in 0u32..(1 << n) {
            for cl in &p.clauses {
                let ok = cl.pos.iter().any(|c| mask & (1 << c) != 0)
                    || cl.neg.iter().any(|c| mask & (1 << c) == 0);
                if !ok {
                    continue 'outer;
                }
            }
            let cost: u64 = (0..n)
                .filter(|&c| mask & (1 << c) != 0)
                .map(|c| p.weights[c] as u64)
                .sum();
            best = Some(best.map_or(cost, |b: u64| b.min(cost)));
        }
        best
    }

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        let mut p = BinateProblem::new(5);
        p.add_clause([0, 1], [2]);
        p.add_clause([2, 3], []);
        p.add_clause([4], [0, 3]);
        p.add_clause([1], [4]);
        let sol = p.solve_exact().unwrap();
        assert!(sol.optimal);
        assert_eq!(Some(sol.cost), brute_force(&p));
    }

    #[test]
    fn empty_problem_selects_nothing() {
        let p = BinateProblem::new(4);
        let sol = p.solve_exact().unwrap();
        assert_eq!(sol.cost, 0);
        assert!(sol.columns.is_empty());
    }
}
