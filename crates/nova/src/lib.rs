#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! A NOVA-like greedy input-encoding baseline (Villa–Sangiovanni-
//! Vincentelli, *NOVA: state assignment for optimal two-level logic
//! implementations*), used as the comparison point of Table 2.
//!
//! NOVA's minimum-code-length heuristics assign codes symbol by symbol,
//! driven by the face-embedding constraints, and polish the result with
//! pairwise improvement. This reimplementation follows that shape:
//!
//! 1. symbols are ordered by constraint involvement (most-constrained
//!    first);
//! 2. each symbol greedily takes the free code that keeps the already-
//!    placed portion of every face constraint on the smallest spanned face
//!    and intrudes on the fewest faces;
//! 3. a pairwise swap pass (plus moves to unused codes) accepts any change
//!    that lowers the number of violated constraints.
//!
//! # Examples
//!
//! ```
//! use ioenc_core::{count_violations, ConstraintSet};
//! use ioenc_nova::{nova_encode, NovaOptions};
//!
//! let mut cs = ConstraintSet::new(4);
//! cs.add_face([0, 1]);
//! cs.add_face([2, 3]);
//! let enc = nova_encode(&cs, &NovaOptions::default());
//! assert_eq!(enc.width(), 2);
//! assert_eq!(count_violations(&cs, &enc), 0);
//! ```

use ioenc_core::{count_violations, ConstraintSet, Encoding};

/// Options for [`nova_encode`].
#[derive(Debug, Clone)]
pub struct NovaOptions {
    /// Code length; `None` uses the minimum `⌈log₂ n⌉` (NOVA's default
    /// minimum-length mode, as compared in Table 2).
    pub code_length: Option<usize>,
    /// Improvement passes over all pairs.
    pub passes: usize,
}

impl Default for NovaOptions {
    fn default() -> Self {
        NovaOptions {
            code_length: None,
            passes: 4,
        }
    }
}

/// Encodes the symbols with the greedy constraint-driven strategy described
/// in the crate docs. The result always assigns distinct codes.
///
/// # Panics
///
/// Panics if the requested length cannot give distinct codes or exceeds
/// 63 bits.
pub fn nova_encode(cs: &ConstraintSet, opts: &NovaOptions) -> Encoding {
    let n = cs.num_symbols();
    if n == 0 {
        return Encoding::new(0, Vec::new());
    }
    let min_len = usize::max(1, (usize::BITS - (n - 1).leading_zeros()) as usize);
    let width = opts.code_length.unwrap_or(min_len);
    assert!(width < 64, "codes wider than 63 bits are unsupported");
    assert!(1usize << width >= n, "length cannot give distinct codes");
    if n == 1 {
        return Encoding::new(width, vec![0]);
    }

    // Order symbols: most face-constraint involvement first.
    let mut involvement = vec![0usize; n];
    for f in cs.faces() {
        for s in f.members.iter() {
            involvement[s] += 1;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(involvement[s]));

    let total = 1u64 << width;
    let mut codes: Vec<Option<u64>> = vec![None; n];
    let mut used = vec![false; total as usize];
    for &s in &order {
        let mut best: Option<(u64, u64)> = None; // (score, code)
        for code in 0..total {
            if used[code as usize] {
                continue;
            }
            let score = placement_score(cs, &codes, s, code, width);
            if best.is_none_or(|(b, _)| score < b) {
                best = Some((score, code));
            }
        }
        // total >= n, so a free code always exists for each of the n states.
        if let Some((_, code)) = best {
            codes[s] = Some(code);
            used[code as usize] = true;
        }
    }
    // Each loop iteration above placed one state, so every slot is `Some`;
    // flatten keeps the impossible miss from panicking.
    let mut assigned: Vec<u64> = codes.into_iter().flatten().collect();

    // Pairwise improvement on the violation count.
    let mut best_cost = count_violations(cs, &Encoding::new(width, assigned.clone()));
    for _ in 0..opts.passes {
        let mut improved = false;
        // Swaps.
        for a in 0..n {
            for b in (a + 1)..n {
                assigned.swap(a, b);
                let cost = count_violations(cs, &Encoding::new(width, assigned.clone()));
                if cost < best_cost {
                    best_cost = cost;
                    improved = true;
                } else {
                    assigned.swap(a, b);
                }
            }
        }
        // Moves to unused codes.
        let mut used = vec![false; total as usize];
        for &c in &assigned {
            used[c as usize] = true;
        }
        for s in 0..n {
            for code in 0..total {
                if used[code as usize] {
                    continue;
                }
                let old = assigned[s];
                assigned[s] = code;
                let cost = count_violations(cs, &Encoding::new(width, assigned.clone()));
                if cost < best_cost {
                    best_cost = cost;
                    used[old as usize] = false;
                    used[code as usize] = true;
                    improved = true;
                } else {
                    assigned[s] = old;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Encoding::new(width, assigned)
}

/// Greedy placement score for giving `code` to symbol `s`: for every face
/// constraint involving `s`, the size of the face spanned so far (smaller
/// is tighter) plus a penalty for already-placed outsiders trapped inside;
/// for faces not involving `s`, a penalty when `code` intrudes on the
/// placed members' span.
fn placement_score(
    cs: &ConstraintSet,
    codes: &[Option<u64>],
    s: usize,
    code: u64,
    width: usize,
) -> u64 {
    let mut score = 0u64;
    for f in cs.faces() {
        let involved = f.members.contains(s);
        let mut placed: Vec<u64> = f
            .members
            .iter()
            .filter_map(|m| if m == s { None } else { codes[m] })
            .collect();
        if involved {
            placed.push(code);
        }
        if placed.len() < 2 {
            continue;
        }
        let (mask, value) = ioenc_core::face_of(&placed, width);
        let free_dims = width as u64 - mask.count_ones() as u64;
        if involved {
            // Tighter spans are better; intruders are heavily penalized.
            score += free_dims * free_dims;
            for (m, c) in codes.iter().enumerate() {
                if let Some(c) = c {
                    if !f.members.contains(m)
                        && !f.dont_cares.contains(m)
                        && ioenc_core::face_contains(mask, value, *c)
                    {
                        score += 64;
                    }
                }
            }
        } else if !f.dont_cares.contains(s) && ioenc_core::face_contains(mask, value, code) {
            score += 64;
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_always_distinct() {
        let mut cs = ConstraintSet::new(7);
        cs.add_face([0, 1, 2]);
        cs.add_face([3, 4]);
        cs.add_face([5, 6]);
        let enc = nova_encode(&cs, &NovaOptions::default());
        assert_eq!(enc.width(), 3);
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 7);
    }

    #[test]
    fn satisfiable_instances_get_solved() {
        let mut cs = ConstraintSet::new(4);
        cs.add_face([0, 1]);
        cs.add_face([2, 3]);
        let enc = nova_encode(&cs, &NovaOptions::default());
        assert_eq!(count_violations(&cs, &enc), 0);
    }

    #[test]
    fn longer_codes_help() {
        // Figure 3's constraints are unsatisfiable in 3 bits but satisfiable
        // in 4.
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let short = nova_encode(&cs, &NovaOptions::default());
        let long = nova_encode(
            &cs,
            &NovaOptions {
                code_length: Some(4),
                ..Default::default()
            },
        );
        assert!(count_violations(&cs, &short) >= 1);
        assert!(count_violations(&cs, &long) <= count_violations(&cs, &short));
    }

    #[test]
    fn empty_and_tiny() {
        let enc = nova_encode(&ConstraintSet::new(0), &NovaOptions::default());
        assert_eq!(enc.num_symbols(), 0);
        let enc = nova_encode(&ConstraintSet::new(1), &NovaOptions::default());
        assert_eq!(enc.num_symbols(), 1);
        let enc = nova_encode(&ConstraintSet::new(2), &NovaOptions::default());
        assert_ne!(enc.code(0), enc.code(1));
    }

    #[test]
    #[should_panic(expected = "distinct codes")]
    fn too_short_panics() {
        nova_encode(
            &ConstraintSet::new(5),
            &NovaOptions {
                code_length: Some(2),
                ..Default::default()
            },
        );
    }

    #[test]
    fn deterministic() {
        let mut cs = ConstraintSet::new(6);
        cs.add_face([0, 3, 5]);
        cs.add_face([1, 2]);
        let a = nova_encode(&cs, &NovaOptions::default());
        let b = nova_encode(&cs, &NovaOptions::default());
        assert_eq!(a, b);
    }
}
