//! Mutation-corpus differential suite for incremental sessions.
//!
//! Every [`Session::apply`] must be *bit-identical* to a from-scratch
//! [`Solver::solve`] of the same edited constraint set — same codes, same
//! width, same errors — whatever was cached from earlier solves. This
//! suite drives sessions through seeded chains of add/remove/swap
//! mutations over KISS-derived and random base sets, mirroring every edit
//! onto a plain constraint set solved from scratch, and fails on the
//! first divergence.
//!
//! The CI matrix re-runs the suite under `IOENC_TEST_THREADS=off` and
//! `=auto`, and `incremental_identity_across_thread_counts` additionally
//! pins off ≡ 2 threads within a single run.
//!
//! The conflict-core test ties the lattice-backed lint shrinker to the
//! golden fixtures recorded before the refactor: the cores (and the full
//! rendered reports) must not have moved.

use ioenc::core::lint::{lint, LintOptions};
use ioenc::core::{ConstraintSet, Delta, EncodeError, Parallelism, Session, Solver};
use ioenc::kiss::{generate, BenchmarkSpec};
use ioenc::server::parse_constraint_text;
use ioenc::symbolic::input_constraints;
use ioenc_rng::SplitMix64;

/// Parallelism for this run, honoring the CI matrix
/// (`IOENC_TEST_THREADS=off|auto|N`).
fn test_threads() -> Parallelism {
    match std::env::var("IOENC_TEST_THREADS").ok().as_deref() {
        None | Some("auto") => Parallelism::Auto,
        Some("off") => Parallelism::Off,
        Some(v) => Parallelism::Fixed(v.parse().expect("IOENC_TEST_THREADS")),
    }
}

/// Renders every constraint of `cs` as a parseable line, in canonical
/// order — the alphabet the mutator draws removals from.
fn lines_of(cs: &ConstraintSet) -> Vec<String> {
    cs.constraint_refs()
        .into_iter()
        .map(|r| cs.describe(r))
        .collect()
}

/// Mirrors [`Session::apply`]'s edit semantics on a plain set: removals
/// resolve by content (first unmatched wins), then additions append.
fn apply_plain(cs: &ConstraintSet, delta: &Delta) -> Result<ConstraintSet, EncodeError> {
    let mut removed = Vec::new();
    for line in delta.removals() {
        let names: Vec<String> = (0..cs.num_symbols())
            .map(|i| cs.name(i).to_string())
            .collect();
        let mut tmp = ConstraintSet::with_names(names);
        let rendered = tmp.add_line(line).map(|r| tmp.describe(r))?;
        let r = cs
            .constraint_refs()
            .into_iter()
            .filter(|r| !removed.contains(r))
            .find(|&r| cs.describe(r) == rendered)
            .ok_or_else(|| EncodeError::parse(format!("no match for '{line}'")))?;
        removed.push(r);
    }
    let keep: Vec<_> = cs
        .constraint_refs()
        .into_iter()
        .filter(|r| !removed.contains(r))
        .collect();
    let mut out = cs.subset(&keep);
    for line in delta.additions() {
        out.add_line(line)?;
    }
    Ok(out)
}

/// One seeded mutation: `add` a fresh face or dominance, `remove` an
/// existing constraint, or `swap` (one remove plus one add in a single
/// delta). Returns `None` when the set has nothing to remove.
fn mutate(cs: &ConstraintSet, rng: &mut SplitMix64) -> Option<Delta> {
    let added = |rng: &mut SplitMix64| {
        let n = cs.num_symbols();
        let mut picks: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut picks);
        if rng.gen_bool(0.5) {
            let k = if rng.gen_bool(0.3) { 3 } else { 2 };
            let members: Vec<&str> = picks[..k.min(n)].iter().map(|&s| cs.name(s)).collect();
            format!("({})", members.join(","))
        } else {
            format!("{}>{}", cs.name(picks[0]), cs.name(picks[1]))
        }
    };
    let existing = lines_of(cs);
    match rng.gen_range(0..3) {
        0 => Some(Delta::new().add(added(rng))),
        1 if !existing.is_empty() => {
            let line = existing[rng.gen_range(0..existing.len())].clone();
            Some(Delta::new().remove(line))
        }
        2 if !existing.is_empty() => {
            let line = existing[rng.gen_range(0..existing.len())].clone();
            Some(Delta::new().remove(line).add(added(rng)))
        }
        _ => None,
    }
}

/// Drives `steps` seeded mutations through a session and a mirrored
/// plain set, asserting bit-identity (codes and errors) at every step.
fn differential_chain(base: ConstraintSet, seed: u64, steps: usize, par: Parallelism) {
    let solver = Solver::new().threads(par);
    let mut session = Session::open(base.clone()).with_solver(solver.clone());
    let mut plain = base;
    let mut rng = SplitMix64::new(seed);

    // The opening solve is itself a differential case.
    check_step(&mut session, &solver, &plain, &Delta::new(), 0);

    let mut applied = 0;
    let mut spins = 0;
    while applied < steps && spins < steps * 10 {
        spins += 1;
        let Some(delta) = mutate(&plain, &mut rng) else {
            continue;
        };
        let Ok(next) = apply_plain(&plain, &delta) else {
            continue; // mutator picked an unparseable line; skip
        };
        plain = next;
        check_step(&mut session, &solver, &plain, &delta, applied + 1);
        applied += 1;
    }
    assert!(applied >= steps / 2, "mutator starved ({applied}/{steps})");
}

/// Applies `delta` to the session and solves `plain` from scratch;
/// both must agree bit-for-bit (codes) or error-for-error.
fn check_step(
    session: &mut Session,
    solver: &Solver,
    plain: &ConstraintSet,
    delta: &Delta,
    step: usize,
) {
    let incremental = session.apply(delta);
    let scratch = solver.solve(plain);
    match (incremental, scratch) {
        (Ok(inc), Ok(exp)) => {
            assert_eq!(
                inc.solution.encoding.width(),
                exp.encoding.width(),
                "step {step}: width diverged on\n{plain}"
            );
            assert_eq!(
                inc.solution.encoding.codes(),
                exp.encoding.codes(),
                "step {step}: codes diverged (incremental={}) on\n{plain}",
                inc.reuse.incremental,
            );
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                a.to_string(),
                b.to_string(),
                "step {step}: errors diverged on\n{plain}"
            );
        }
        (Ok(inc), Err(e)) => panic!(
            "step {step}: incremental solved ({} bits) but scratch failed ({e}) on\n{plain}",
            inc.solution.encoding.width()
        ),
        (Err(e), Ok(exp)) => panic!(
            "step {step}: incremental failed ({e}) but scratch solved ({} bits) on\n{plain}",
            exp.encoding.width()
        ),
    }
    // The session must have committed exactly the mirrored set.
    assert_eq!(
        lines_of(session.constraints()),
        lines_of(plain),
        "step {step}: session set drifted"
    );
}

fn random_base(symbols: usize, faces: usize, doms: usize, seed: u64) -> ConstraintSet {
    let mut cs = ConstraintSet::new(symbols);
    let mut rng = SplitMix64::new(seed);
    for _ in 0..faces {
        let mut picks: Vec<usize> = (0..symbols).collect();
        rng.shuffle(&mut picks);
        let k = 2 + rng.gen_range(0..2);
        cs.add_face(picks[..k].to_vec());
    }
    for _ in 0..doms {
        let a = rng.gen_range(0..symbols);
        let b = rng.gen_range(0..symbols);
        if a != b {
            cs.add_dominance(a, b);
        }
    }
    cs
}

#[test]
fn kiss_bases_survive_mutation_chains() {
    let par = test_threads();
    for (states, seed) in [(8usize, 11u64), (10, 12)] {
        let fsm = generate(&BenchmarkSpec::sized("incdiff", states));
        let cs = input_constraints(&fsm);
        differential_chain(cs, seed, 8, par);
    }
}

#[test]
fn random_bases_survive_mutation_chains() {
    let par = test_threads();
    for seed in [1u64, 2, 3, 4] {
        let cs = random_base(8, 4, 2, seed * 97);
        differential_chain(cs, seed, 10, par);
    }
}

#[test]
fn paper_base_survives_a_long_chain() {
    // The Section-1 set from the paper: small enough for a long chain.
    let cs = ConstraintSet::parse(
        &["a", "b", "c", "d"],
        "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
    )
    .unwrap();
    differential_chain(cs, 1991, 16, test_threads());
}

#[test]
fn incremental_identity_across_thread_counts() {
    // Same chain, different parallelism: the mutation corpus must produce
    // byte-identical codes at every step whatever the thread count, so
    // pin off ≡ 2 threads directly (the CI matrix covers off/auto).
    let record = |par: Parallelism| -> Vec<Vec<u64>> {
        let base = random_base(8, 3, 2, 777);
        let solver = Solver::new().threads(par);
        let mut session = Session::open(base.clone()).with_solver(solver);
        let mut plain = base;
        let mut rng = SplitMix64::new(4242);
        let mut trace = Vec::new();
        for _ in 0..8 {
            let Some(delta) = mutate(&plain, &mut rng) else {
                continue;
            };
            let Ok(next) = apply_plain(&plain, &delta) else {
                continue;
            };
            plain = next;
            if let Ok(out) = session.apply(&delta) {
                trace.push(out.solution.encoding.codes().to_vec());
            } else {
                trace.push(Vec::new());
            }
        }
        trace
    };
    assert_eq!(
        record(Parallelism::Off),
        record(Parallelism::Fixed(2)),
        "incremental codes diverge across thread counts"
    );
}

#[test]
fn conflict_cores_match_the_pre_lattice_goldens() {
    // The lint conflict-core shrinker now walks the shared constraint-
    // subset lattice (SubsetOracle); the cores it produces must be the
    // ones recorded in the PR-3 golden fixtures, byte for byte.
    for stem in ["e008", "clean"] {
        let rel = format!("tests/fixtures/lint/{stem}.txt");
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(&rel);
        let text = std::fs::read_to_string(&path).unwrap();
        let cs = parse_constraint_text(&text).unwrap();
        let report = lint(&cs, &LintOptions::new());
        let golden = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join(format!("tests/fixtures/lint/golden/{stem}.text"));
        let expect = std::fs::read_to_string(&golden).unwrap();
        assert_eq!(
            report.render(&cs, Some(&rel)),
            expect,
            "{stem}: lattice-backed lint drifted from its golden"
        );
    }
    // And the e008 core itself is the verified-minimal 3-constraint one.
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint/e008.txt");
    let cs = parse_constraint_text(&std::fs::read_to_string(path).unwrap()).unwrap();
    let report = lint(&cs, &LintOptions::new());
    let core = report.core.expect("e008 has a conflict core");
    assert!(core.verified_minimal);
    let rendered: Vec<String> = core.constraints.iter().map(|&r| cs.describe(r)).collect();
    assert_eq!(rendered, ["(s1,s5)", "s5>s2", "s0=s1|s2"]);
}
