//! Cross-check of Section 4's explicit binate-table formulation against the
//! dichotomy-based exact encoder: solving the table directly with the
//! binate solver must find the same minimum code length.
// The free-function entry points are deprecated in favor of `Solver`,
// but must keep working until removal; this suite stays on them as
// coverage of the delegating wrappers.
#![allow(deprecated)]

use ioenc::core::{exact_encode, BinateFormulation, ConstraintSet, ExactOptions};
use ioenc::cover::BinateProblem;

/// Solves the explicit table with the binate covering solver, returning the
/// minimum number of selected encoding columns, or `None` when infeasible.
fn solve_table(cs: &ConstraintSet) -> Option<usize> {
    let f = BinateFormulation::build(cs);
    let mut p = BinateProblem::new(f.columns.len());
    for row in &f.rows {
        p.add_clause(row.ones.iter().copied(), row.zeros.iter().copied())
    }
    p.solve_exact().ok().map(|sol| sol.columns.len())
}

#[test]
fn table_and_encoder_agree_on_section_1_example() {
    let cs = ConstraintSet::parse(
        &["a", "b", "c", "d"],
        "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
    )
    .unwrap();
    let table_width = solve_table(&cs).expect("feasible");
    let enc = exact_encode(&cs, &ExactOptions::default()).unwrap();
    assert_eq!(table_width, enc.width());
}

#[test]
fn table_and_encoder_agree_on_figure_8() {
    let cs =
        ConstraintSet::parse(&["s0", "s1", "s2", "s3"], "(s0,s1)\ns0>s1\ns1>s2\ns0=s1|s3").unwrap();
    assert_eq!(solve_table(&cs), Some(2));
    assert_eq!(
        exact_encode(&cs, &ExactOptions::default()).unwrap().width(),
        2
    );
}

#[test]
fn table_detects_figure_4_infeasibility() {
    let names = ["s0", "s1", "s2", "s3", "s4", "s5"];
    let cs = ConstraintSet::parse(
        &names,
        "(s1,s5)\n(s2,s5)\n(s4,s5)\n\
         s0>s1\ns0>s2\ns0>s3\ns0>s5\ns1>s3\ns2>s3\ns4>s5\ns5>s2\ns5>s3\n\
         s0=s1|s2",
    )
    .unwrap();
    assert_eq!(solve_table(&cs), None);
}

#[test]
fn table_handles_input_only_problems() {
    let mut cs = ConstraintSet::new(5);
    cs.add_face([0, 1, 2]);
    cs.add_face([2, 3]);
    let table_width = solve_table(&cs).expect("input-only is always feasible");
    let enc = exact_encode(&cs, &ExactOptions::default()).unwrap();
    assert_eq!(table_width, enc.width());
}

#[test]
fn extended_disjunctive_rows_restrict_columns() {
    let cs = ConstraintSet::parse(&["a", "b", "c"], "(b,c)\n(b&c)>=a").unwrap();
    let table_width = solve_table(&cs).expect("feasible");
    let enc = exact_encode(&cs, &ExactOptions::default()).unwrap();
    assert_eq!(table_width, enc.width());
    assert!(enc.verify(&cs).is_empty());
}
