//! Integration tests for the `ioenc` command-line front end.

use std::io::Write;
use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let (code, stdout, stderr) = run_code(args);
    (code == Some(0), stdout, stderr)
}

fn run_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ioenc"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("ioenc-cli-{name}-{}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

const SECTION1: &str = "\
symbols: a b c d
(b,c)
(c,d)
(b,a)
(a,d)
b>c
a>c
a=b|d
";

#[test]
fn check_reports_feasible() {
    let path = write_temp("check", SECTION1);
    let (ok, stdout, _) = run(&["check", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("FEASIBLE"), "{stdout}");
}

#[test]
fn check_reports_infeasible_with_witnesses() {
    let path = write_temp("infeasible", "symbols: a b\na>b\nb>a\n");
    let (ok, stdout, _) = run(&["check", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("INFEASIBLE"), "{stdout}");
}

#[test]
fn encode_prints_two_bit_codes() {
    let path = write_temp("encode", SECTION1);
    let (ok, stdout, _) = run(&["encode", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("2 bits"), "{stdout}");
    assert!(stdout.contains("a = "), "{stdout}");
}

#[test]
fn heuristic_encode_with_options() {
    let path = write_temp("heur", SECTION1);
    let (ok, stdout, _) = run(&[
        "encode",
        path.to_str().unwrap(),
        "--heuristic",
        "--bits",
        "3",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("3 bits"), "{stdout}");
}

#[test]
fn primes_lists_dichotomies() {
    let path = write_temp("primes", "symbols: a b c\n(a,b)\n");
    let (ok, stdout, _) = run(&["primes", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("prime encoding-dichotomies"), "{stdout}");
}

#[test]
fn fsm_extracts_constraints() {
    let kiss = "\
.i 1
.o 1
.s 4
0 a c 1
0 b c 1
1 a d 0
1 b a 0
- c a 0
- d b 1
.e
";
    let path = write_temp("fsm", kiss);
    let (ok, stdout, _) = run(&["fsm", path.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("symbols: a"), "{stdout}");
}

#[test]
fn table_prints_binate_rows() {
    let path = write_temp("table", "symbols: a b c\n(a,b)\nb>c\n");
    let (ok, stdout, _) = run(&["table", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("columns:"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_help() {
    let (ok, _, stderr) = run(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (ok, _, stderr) = run(&["check", "/nonexistent/file"]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn missing_symbols_header_is_an_error() {
    let path = write_temp("nohdr", "(a,b)\n");
    let (ok, _, stderr) = run(&["check", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("symbols"), "{stderr}");
}

#[test]
fn fsm_assign_prints_codes_and_cost() {
    let kiss = "\
.i 1
.o 1
.s 4
0 a c 1
0 b c 1
1 a d 0
1 b a 0
- c a 0
- d b 1
.e
";
    let path = write_temp("assign", kiss);
    let (ok, stdout, stderr) = run(&["fsm", path.to_str().unwrap(), "--assign"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("face constraints satisfied"), "{stdout}");
    assert!(stdout.contains("PLA"), "{stdout}");
}

#[test]
fn auto_encode_answers_with_the_exact_rung_when_budget_suffices() {
    let path = write_temp("auto", SECTION1);
    let (ok, stdout, stderr) = run(&[
        "encode",
        path.to_str().unwrap(),
        "--auto",
        "--max-primes",
        "1000",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("exact encoding"), "{stdout}");
    assert!(stdout.contains("minimum length"), "{stdout}");
    // Statistics land on stderr, not stdout.
    assert!(stderr.contains("evaluations"), "{stderr}");
    assert!(!stdout.contains("evaluations"), "{stdout}");
}

#[test]
fn auto_encode_reports_degradation_on_stderr() {
    // 12 unconstrained symbols exceed a 50-prime budget; the ladder must
    // still answer on stdout and explain the expiries on stderr.
    let body = format!(
        "symbols: {}\n",
        (0..12).map(|i| format!("s{i} ")).collect::<String>()
    );
    let path = write_temp("autodeg", &body);
    let (ok, stdout, stderr) = run(&[
        "encode",
        path.to_str().unwrap(),
        "--auto",
        "--max-primes",
        "50",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("encoding"), "{stdout}");
    assert!(stderr.contains("fell short"), "{stderr}");
}

#[test]
fn auto_without_budget_flags_is_rejected() {
    let path = write_temp("autonobudget", SECTION1);
    let (ok, _, stderr) = run(&["encode", path.to_str().unwrap(), "--auto"]);
    assert!(!ok);
    assert!(stderr.contains("needs at least one budget"), "{stderr}");
}

#[test]
fn auto_rejects_bad_budget_values() {
    let path = write_temp("autobad", SECTION1);
    // A zero deadline can never be met.
    let (ok, _, stderr) = run(&[
        "encode",
        path.to_str().unwrap(),
        "--auto",
        "--deadline-ms",
        "0",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("--deadline-ms must be positive"),
        "{stderr}"
    );
    // Negative and garbage values are parse errors, not silent defaults.
    for bad in ["-5", "many"] {
        let (ok, _, stderr) = run(&[
            "encode",
            path.to_str().unwrap(),
            "--auto",
            "--max-nodes",
            bad,
        ]);
        assert!(!ok, "--max-nodes {bad} accepted");
        assert!(stderr.contains("--max-nodes"), "{stderr}");
    }
    // A budget flag with no value at all.
    let (ok, _, stderr) = run(&["encode", path.to_str().unwrap(), "--auto", "--max-evals"]);
    assert!(!ok);
    assert!(stderr.contains("--max-evals"), "{stderr}");
}

#[test]
fn auto_conflicts_with_heuristic_flag() {
    let path = write_temp("autoconflict", SECTION1);
    let (ok, _, stderr) = run(&[
        "encode",
        path.to_str().unwrap(),
        "--auto",
        "--heuristic",
        "--max-primes",
        "10",
    ]);
    assert!(!ok);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
}

#[test]
fn auto_stdout_is_byte_identical_across_thread_counts() {
    let path = write_temp("autothreads", SECTION1);
    let budget = ["--auto", "--max-primes", "100", "--max-evals", "500"];
    let mut outputs = Vec::new();
    for threads in ["off", "2", "4", "auto"] {
        let mut args = vec!["encode", path.to_str().unwrap()];
        args.extend_from_slice(&budget);
        args.extend_from_slice(&["--threads", threads]);
        let (ok, stdout, stderr) = run(&args);
        assert!(ok, "{stderr}");
        outputs.push(stdout);
    }
    // Only stderr (timings, thread counts) may vary; the answer does not.
    assert!(
        outputs.iter().all(|o| *o == outputs[0]),
        "stdout varies across thread counts: {outputs:?}"
    );
}

#[test]
fn exit_codes_are_consistent_per_error_class() {
    let parse = write_temp("exit-parse", "(a,b)\n"); // missing symbols: header
    let infeasible = write_temp("exit-infeasible", "symbols: a b\na>b\nb>a\n");
    let wide = write_temp(
        "exit-wide",
        &format!(
            "symbols: {}\n",
            (0..12).map(|i| format!("s{i} ")).collect::<String>()
        ),
    );
    let feasible = write_temp("exit-ok", SECTION1);
    // (args, expected exit code, stderr fragment)
    let table: Vec<(Vec<&str>, i32, &str)> = vec![
        (vec!["encode", feasible.to_str().unwrap()], 0, ""),
        (vec!["encode", parse.to_str().unwrap()], 2, "symbols"),
        (vec!["encode", "/nonexistent/ioenc-file"], 3, "error"),
        // --auto with no budget at all: a limit error.
        (
            vec!["encode", feasible.to_str().unwrap(), "--auto"],
            4,
            "budget",
        ),
        // A tiny prime budget on a wide, unconstrained set expires.
        (
            vec!["encode", wide.to_str().unwrap(), "--max-primes", "2"],
            5,
            "budget",
        ),
        (
            vec!["encode", infeasible.to_str().unwrap()],
            6,
            "unsatisfiable",
        ),
        // The same classes hold under --json (errors go to stdout there).
        (vec!["encode", parse.to_str().unwrap(), "--json"], 2, ""),
        (
            vec!["encode", infeasible.to_str().unwrap(), "--json"],
            6,
            "",
        ),
        // ... and for other subcommands.
        (vec!["lint", infeasible.to_str().unwrap()], 6, ""),
        (vec!["canon", parse.to_str().unwrap()], 2, "symbols"),
    ];
    for (args, want, fragment) in table {
        let (code, stdout, stderr) = run_code(&args);
        assert_eq!(
            code,
            Some(want),
            "{args:?}\nstdout: {stdout}\nstderr: {stderr}"
        );
        assert!(stderr.contains(fragment), "{args:?}: {stderr}");
    }
}

#[test]
fn encode_json_reports_codes_and_deterministic_stats() {
    let path = write_temp("json-ok", SECTION1);
    let (code, stdout, stderr) = run_code(&["encode", path.to_str().unwrap(), "--json"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.starts_with("{\"ok\":true,\"key\":\""), "{stdout}");
    assert!(stdout.contains("\"mode\":\"exact\""), "{stdout}");
    assert!(stdout.contains("\"width\":2"), "{stdout}");
    assert!(stdout.contains("{\"symbol\":\"a\",\"code\":\""), "{stdout}");
    assert!(stdout.contains("\"num_primes\":"), "{stdout}");
    // Deterministic: timings and thread counts never appear.
    assert!(!stdout.contains("elapsed"), "{stdout}");
    assert!(!stdout.contains("thread"), "{stdout}");
    // One line of JSON, nothing else.
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
}

#[test]
fn encode_json_failure_embeds_the_lint_report() {
    let path = write_temp("json-bad", "symbols: a b\na>b\nb>a\n");
    let (code, stdout, _) = run_code(&["encode", path.to_str().unwrap(), "--json"]);
    assert_eq!(code, Some(6), "{stdout}");
    assert!(stdout.contains("\"ok\":false"), "{stdout}");
    assert!(stdout.contains("\"class\":\"infeasible\""), "{stdout}");
    assert!(stdout.contains("\"exit_code\":6"), "{stdout}");
    assert!(stdout.contains("\"lint\":"), "{stdout}");
    assert!(stdout.contains("\"diagnostics\":"), "{stdout}");
}

#[test]
fn encode_json_is_byte_identical_across_thread_counts() {
    let path = write_temp("json-threads", SECTION1);
    let mut outputs = Vec::new();
    for threads in ["off", "2", "auto"] {
        let (code, stdout, stderr) = run_code(&[
            "encode",
            path.to_str().unwrap(),
            "--json",
            "--threads",
            threads,
        ]);
        assert_eq!(code, Some(0), "{stderr}");
        outputs.push(stdout);
    }
    assert!(outputs.iter().all(|o| *o == outputs[0]), "{outputs:?}");
}

#[test]
fn canon_gives_permuted_spellings_the_same_key() {
    let a = write_temp("canon-a", SECTION1);
    let b = write_temp(
        "canon-b",
        "symbols: d c b a\n(a,d)\na>c\n(c,d)\n(b,a)\nb>c\na=b|d\n(b,c)\n",
    );
    let (ok, out_a, _) = run(&["canon", a.to_str().unwrap()]);
    assert!(ok);
    let (ok, out_b, _) = run(&["canon", b.to_str().unwrap()]);
    assert!(ok);
    assert_eq!(out_a, out_b, "canonical output must be spelling-invariant");
    assert!(out_a.starts_with("key: "), "{out_a}");
    assert!(out_a.contains("symbols: a b c d"), "{out_a}");
}

#[test]
fn session_subcommand_tracks_edits_incrementally() {
    use std::process::Stdio;
    let base = "symbols: a b c d e\n(a,b)\n(c,d)\n(b,c,e)\na>c\n";
    let edited = "symbols: a b c d e\n(a,b)\n(c,d)\n(b,c,e)\n(d,e)\n";
    let path = write_temp("session", base);

    let mut child = Command::new(env!("CARGO_BIN_EXE_ioenc"))
        .args(["session", path.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"add (d,e)\nremove a>c\nshow\nquit\n")
        .expect("write commands");
    let out = child.wait_with_output().expect("session exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);

    // Three solves (initial, add, remove), then the edited set echoed back.
    assert_eq!(stdout.matches(" bits:").count(), 3, "{stdout}");
    assert!(stderr.contains("incremental:"), "{stderr}");
    assert!(stdout.ends_with(edited), "{stdout}");

    // The final session solve is bit-identical to a fresh direct solve of
    // the edited set: the last codes block must equal `ioenc session` run
    // on the edited file with no edits at all.
    let edited_path = write_temp("session-edited", edited);
    let mut fresh = Command::new(env!("CARGO_BIN_EXE_ioenc"))
        .args(["session", edited_path.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    drop(fresh.stdin.take()); // EOF: solve once and exit
    let fresh_out = fresh.wait_with_output().expect("session exits");
    assert!(fresh_out.status.success());
    let fresh_stdout = String::from_utf8_lossy(&fresh_out.stdout);
    let last_block = stdout
        .trim_end_matches(edited)
        .rsplit_once(" bits:")
        .map(|(head, tail)| {
            let width = head.rsplit('\n').next().unwrap_or(head);
            format!("{width} bits:{tail}")
        })
        .expect("a codes block");
    assert_eq!(
        fresh_stdout, last_block,
        "session diverged from fresh solve"
    );
}

#[test]
fn session_reports_edit_errors_and_continues() {
    let path = write_temp("session-err", SECTION1);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ioenc"))
        .args(["session", path.to_str().unwrap()])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"remove (a,c)\nbogus\nadd (b,c)\n")
        .expect("write commands");
    let out = child.wait_with_output().expect("session exits");
    assert!(out.status.success(), "errors must not kill the session");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no constraint matching"), "{stderr}");
    assert!(stderr.contains("unknown session command"), "{stderr}");
    // Initial solve plus the successful add; the failed edits solve nothing.
    assert_eq!(stdout.matches(" bits:").count(), 2, "{stdout}");
}

#[test]
fn minimize_subcommand_shrinks_pla() {
    let pla = "\
.i 3
.o 2
110 10
111 10
011 01
010 01
--1 11
";
    let path = write_temp("pla", pla);
    let (ok, stdout, stderr) = run(&["minimize", path.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains(".p 3"), "{stdout}");
    assert!(stdout.contains("11- 10"), "{stdout}");
}
