//! Integration tests for the `ioenc` command-line front end.

use std::io::Write;
use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ioenc"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("ioenc-cli-{name}-{}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

const SECTION1: &str = "\
symbols: a b c d
(b,c)
(c,d)
(b,a)
(a,d)
b>c
a>c
a=b|d
";

#[test]
fn check_reports_feasible() {
    let path = write_temp("check", SECTION1);
    let (ok, stdout, _) = run(&["check", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("FEASIBLE"), "{stdout}");
}

#[test]
fn check_reports_infeasible_with_witnesses() {
    let path = write_temp("infeasible", "symbols: a b\na>b\nb>a\n");
    let (ok, stdout, _) = run(&["check", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("INFEASIBLE"), "{stdout}");
}

#[test]
fn encode_prints_two_bit_codes() {
    let path = write_temp("encode", SECTION1);
    let (ok, stdout, _) = run(&["encode", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("2 bits"), "{stdout}");
    assert!(stdout.contains("a = "), "{stdout}");
}

#[test]
fn heuristic_encode_with_options() {
    let path = write_temp("heur", SECTION1);
    let (ok, stdout, _) = run(&[
        "encode",
        path.to_str().unwrap(),
        "--heuristic",
        "--bits",
        "3",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("3 bits"), "{stdout}");
}

#[test]
fn primes_lists_dichotomies() {
    let path = write_temp("primes", "symbols: a b c\n(a,b)\n");
    let (ok, stdout, _) = run(&["primes", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("prime encoding-dichotomies"), "{stdout}");
}

#[test]
fn fsm_extracts_constraints() {
    let kiss = "\
.i 1
.o 1
.s 4
0 a c 1
0 b c 1
1 a d 0
1 b a 0
- c a 0
- d b 1
.e
";
    let path = write_temp("fsm", kiss);
    let (ok, stdout, _) = run(&["fsm", path.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("symbols: a"), "{stdout}");
}

#[test]
fn table_prints_binate_rows() {
    let path = write_temp("table", "symbols: a b c\n(a,b)\nb>c\n");
    let (ok, stdout, _) = run(&["table", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("columns:"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_help() {
    let (ok, _, stderr) = run(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (ok, _, stderr) = run(&["check", "/nonexistent/file"]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn missing_symbols_header_is_an_error() {
    let path = write_temp("nohdr", "(a,b)\n");
    let (ok, _, stderr) = run(&["check", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("symbols"), "{stderr}");
}

#[test]
fn fsm_assign_prints_codes_and_cost() {
    let kiss = "\
.i 1
.o 1
.s 4
0 a c 1
0 b c 1
1 a d 0
1 b a 0
- c a 0
- d b 1
.e
";
    let path = write_temp("assign", kiss);
    let (ok, stdout, stderr) = run(&["fsm", path.to_str().unwrap(), "--assign"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("face constraints satisfied"), "{stdout}");
    assert!(stdout.contains("PLA"), "{stdout}");
}

#[test]
fn minimize_subcommand_shrinks_pla() {
    let pla = "\
.i 3
.o 2
110 10
111 10
011 01
010 01
--1 11
";
    let path = write_temp("pla", pla);
    let (ok, stdout, stderr) = run(&["minimize", path.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains(".p 3"), "{stdout}");
    assert!(stdout.contains("11- 10"), "{stdout}");
}
