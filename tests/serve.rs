//! Differential integration tests for `ioenc serve`.
//!
//! The contract under test: every `encode` response the server emits is
//! byte-identical to what `ioenc encode --json` prints for the same raw
//! request text — regardless of worker count, cache state, request
//! order, or how many duplicated / symbol-permuted variants share a
//! canonical key.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use ioenc_rng::SplitMix64;

const FIXTURE_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/serve");
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

fn fixture_texts() -> Vec<String> {
    let mut paths: Vec<_> = std::fs::read_dir(FIXTURE_DIR)
        .expect("fixture dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no serve fixtures found");
    paths
        .iter()
        .map(|p| std::fs::read_to_string(p).expect("fixture"))
        .collect()
}

/// Re-spells `text` with a shuffled `symbols:` header and shuffled
/// constraint lines: the same set, a different (but valid) spelling.
fn permute(text: &str, rng: &mut SplitMix64) -> String {
    let mut lines: Vec<&str> = text.lines().collect();
    let header = lines.remove(0);
    let mut names: Vec<&str> = header
        .strip_prefix("symbols:")
        .expect("fixture header")
        .split_whitespace()
        .collect();
    rng.shuffle(&mut names);
    rng.shuffle(&mut lines);
    let mut out = format!("symbols: {}\n", names.join(" "));
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn encode_request(id: usize, text: &str) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"encode\",\"text\":\"{}\"}}",
        json_escape(text)
    )
}

/// Runs `ioenc encode --json` on `text` and returns the single stdout
/// line — the reference result the server must reproduce byte-for-byte.
fn cli_json(text: &str, tag: usize) -> String {
    let path =
        std::env::temp_dir().join(format!("ioenc-serve-ref-{}-{tag}.txt", std::process::id()));
    std::fs::write(&path, text).expect("write ref input");
    let out = Command::new(env!("CARGO_BIN_EXE_ioenc"))
        .args(["encode", path.to_str().expect("utf8 path"), "--json"])
        .output()
        .expect("reference CLI runs");
    let _ = std::fs::remove_file(&path);
    let stdout = String::from_utf8(out.stdout).expect("utf8 json");
    stdout.trim_end().to_string()
}

struct Server {
    child: Child,
    stdin: std::process::ChildStdin,
    lines: mpsc::Receiver<String>,
}

impl Server {
    fn spawn(args: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ioenc"))
            .arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("server spawns");
        let stdin = child.stdin.take().expect("stdin");
        let stdout = child.stdout.take().expect("stdout");
        let (tx, lines) = mpsc::channel();
        // Drain stdout on a thread so a full pipe can never deadlock the
        // writer below.
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                match line {
                    Ok(l) => {
                        if tx.send(l).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });
        Server {
            child,
            stdin,
            lines,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("request written");
        self.stdin.flush().expect("flush");
    }

    fn recv(&self) -> String {
        self.lines
            .recv_timeout(RECV_TIMEOUT)
            .expect("response line")
    }

    fn shutdown(mut self) {
        self.send("{\"id\":999999,\"op\":\"shutdown\"}");
        let _ = self.recv(); // the shutdown ack
        drop(self.stdin);
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "server exit: {status}");
    }
}

/// Splits a `{"id":N,"v":1,"result":...}` response line into
/// `(N, result)`, asserting the protocol-version field on the way.
fn split_response(line: &str) -> (usize, &str) {
    let rest = line.strip_prefix("{\"id\":").unwrap_or_else(|| {
        panic!("malformed response: {line}");
    });
    let comma = rest.find(",\"v\":1,\"result\":").unwrap_or_else(|| {
        panic!("response missing v1 envelope: {line}");
    });
    let id: usize = rest[..comma].parse().expect("numeric id");
    let body = &rest[comma + ",\"v\":1,\"result\":".len()..];
    let result = body.strip_suffix('}').expect("closing brace");
    (id, result)
}

/// The tentpole differential test: a shuffled 200-request corpus with
/// duplicates and symbol-permuted variants, replayed against servers with
/// 1 and 8 workers, cache enabled and disabled. Every response must match
/// the one-shot CLI byte-for-byte.
#[test]
fn serve_matches_cli_byte_for_byte_across_workers_and_cache() {
    let mut rng = SplitMix64::new(0x5eed_1991);
    let mut uniques = fixture_texts();
    for i in 0..uniques.len() {
        // Two permuted spellings per fixture; same canonical key, but the
        // response must list codes in each spelling's own symbol order.
        for _ in 0..2 {
            uniques.push(permute(&uniques[i], &mut rng));
        }
    }
    // One infeasible and one malformed text ride along: failures must be
    // byte-identical (and correctly replayed-or-not from the cache) too.
    uniques.push("symbols: a b\na>b\nb>a\n".to_string());
    uniques.push("symbols: a b\n(a,b\n".to_string());

    let expected: Vec<String> = uniques
        .iter()
        .enumerate()
        .map(|(i, t)| cli_json(t, i))
        .collect();

    let corpus: Vec<usize> = (0..200).map(|_| rng.gen_range(0..uniques.len())).collect();

    for (workers, cache) in [("1", "1024"), ("8", "1024"), ("1", "off"), ("8", "off")] {
        let mut server = Server::spawn(&["--workers", workers, "--queue", "256", "--cache", cache]);
        for (id, &u) in corpus.iter().enumerate() {
            server.send(&encode_request(id, &uniques[u]));
        }
        let mut got: HashMap<usize, String> = HashMap::new();
        while got.len() < corpus.len() {
            let line = server.recv();
            let (id, result) = split_response(&line);
            assert!(got.insert(id, result.to_string()).is_none(), "dup id {id}");
        }
        for (id, &u) in corpus.iter().enumerate() {
            assert_eq!(
                got[&id], expected[u],
                "workers={workers} cache={cache} request {id} diverged from the CLI"
            );
        }
        // The duplicated corpus must actually exercise the cache.
        server.send("{\"id\":888888,\"op\":\"stats\"}");
        let stats = server.recv();
        let (_, result) = split_response(&stats);
        if cache == "off" {
            assert!(result.contains("\"enabled\":false"), "{result}");
        } else {
            let hits: u64 = result
                .split("\"hits\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.parse().ok())
                .expect("hits counter");
            assert!(hits > 0, "no cache hits on a duplicated corpus: {result}");
        }
        server.shutdown();
    }
}

#[test]
fn serve_replays_ids_verbatim_and_types_bad_requests() {
    let mut server = Server::spawn(&["--workers", "1"]);
    server.send("not json");
    let line = server.recv();
    assert!(line.starts_with("{\"id\":null,"), "{line}");
    assert!(line.contains("\"class\":\"parse\""), "{line}");
    server.send("{\"id\":\"weird-id\",\"op\":\"encode\"}");
    let line = server.recv();
    assert!(line.starts_with("{\"id\":\"weird-id\","), "{line}");
    assert!(line.contains("\"class\":\"parse\""), "{line}");
    server.shutdown();
}

/// Sessions over the NDJSON protocol: an incremental `delta` must give
/// byte-identical `codes` to a from-scratch `open` of the edited text
/// (sessions solve the caller's set directly; that is the incremental ≡
/// from-scratch gate), and must agree with one-shot `encode` on width.
#[test]
fn serve_sessions_match_from_scratch_opens() {
    let base = "symbols: a b c d e\n(a,b)\n(c,d)\n(b,c,e)\na>c\n";
    let edited = "symbols: a b c d e\n(a,b)\n(c,d)\n(b,c,e)\n(d,e)\n";
    let open_req = |id: usize, text: &str| {
        format!(
            "{{\"id\":{id},\"op\":\"open\",\"text\":\"{}\"}}",
            json_escape(text)
        )
    };
    let mut server = Server::spawn(&["--workers", "2"]);
    server.send(&encode_request(1, edited));
    server.send(&open_req(2, base));
    server.send(&open_req(3, edited));
    let mut got: HashMap<usize, String> = HashMap::new();
    while got.len() < 3 {
        let line = server.recv();
        let (id, result) = split_response(&line);
        got.insert(id, result.to_string());
    }
    let session_of = |result: &str| -> u64 {
        result
            .split("\"session\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.parse().ok())
            .expect("session id")
    };
    let codes_of = |result: &str| {
        result
            .split("\"codes\":")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .map(str::to_string)
            .expect("codes array")
    };
    let base_session = session_of(&got[&2]);

    server.send(&format!(
        "{{\"id\":4,\"op\":\"delta\",\"session\":{base_session},\"add\":[\"(d,e)\"],\"remove\":[\"a>c\"]}}"
    ));
    let line = server.recv();
    let (id, result) = split_response(line.trim_end());
    assert_eq!(id, 4);
    assert!(
        result.contains("\"incremental\":true"),
        "delta did not reuse: {result}"
    );
    // Incremental delta ≡ from-scratch open of the edited text, byte for
    // byte in the codes.
    assert_eq!(codes_of(result), codes_of(&got[&3]), "delta vs fresh open");
    // And the minimum width agrees with the one-shot encode pipeline.
    let width_of = |result: &str| {
        result
            .split("\"width\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .map(str::to_string)
            .expect("width")
    };
    assert_eq!(
        width_of(result),
        width_of(&got[&1]),
        "delta vs encode width"
    );

    for (rid, sid) in [(5usize, base_session), (6, session_of(&got[&3]))] {
        server.send(&format!(
            "{{\"id\":{rid},\"op\":\"close\",\"session\":{sid}}}"
        ));
        let line = server.recv();
        assert!(line.contains("\"closed\":true"), "{line}");
    }
    server.shutdown();
}

#[test]
fn serve_rejects_unknown_protocol_versions() {
    let mut server = Server::spawn(&["--workers", "1"]);
    server.send("{\"id\":1,\"v\":2,\"op\":\"stats\"}");
    let line = server.recv();
    let (id, result) = split_response(line.trim_end());
    assert_eq!(id, 1);
    assert!(result.contains("\"class\":\"protocol\""), "{result}");
    server.shutdown();
}

/// Waits for the `listening on` banner with a hard bound, so a server
/// that dies before binding (or never binds) fails the test with a clear
/// message instead of hanging it until the harness timeout.
fn wait_for_banner(child: &mut Child) -> String {
    let stderr = child.stderr.take().expect("stderr piped");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut line = String::new();
        let _ = BufReader::new(stderr).read_line(&mut line);
        let _ = tx.send(line);
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("server exited before binding: {status}");
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(banner) if banner.contains("listening on") => return banner,
            Ok(other) => panic!("unexpected first stderr line: {other:?}"),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if std::time::Instant::now() > deadline {
                    let _ = child.kill();
                    panic!("server did not print its listen banner within 30s");
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("server closed stderr before printing its listen banner")
            }
        }
    }
}

#[test]
fn serve_tcp_round_trips_on_an_ephemeral_port() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ioenc"))
        .args(["serve", "--tcp", "0", "--workers", "2"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns");
    let banner = wait_for_banner(&mut child);
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("addr in banner")
        .to_string();
    assert!(addr.starts_with("127.0.0.1:"), "{banner}");

    let text = std::fs::read_to_string(format!("{FIXTURE_DIR}/section1.txt")).expect("fixture");
    let expected = cli_json(&text, 9000);
    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{}", encode_request(1, &text)).expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("response");
    let (id, result) = split_response(line.trim_end());
    assert_eq!(id, 1);
    assert_eq!(result, expected, "TCP response diverged from the CLI");
    writeln!(writer, "{{\"id\":2,\"op\":\"shutdown\"}}").expect("send shutdown");
    line.clear();
    reader.read_line(&mut line).expect("shutdown ack");
    assert!(line.contains("\"shutting_down\":true"), "{line}");
    let status = child.wait().expect("server exits");
    assert!(status.success(), "server exit: {status}");
}
