//! Integration of the whole pipeline: FSM generation / KISS2 → symbolic
//! minimization → constraints → encoders → semantic verification →
//! encoded-PLA measurement.
// The free-function entry points are deprecated in favor of `Solver`,
// but must keep working until removal; this suite stays on them as
// coverage of the delegating wrappers.
#![allow(deprecated)]

use ioenc::anneal::{anneal_encode, AnnealOptions};
use ioenc::core::{
    check_feasible, count_violations, exact_encode, heuristic_encode, CostFunction, EncodeError,
    ExactOptions, HeuristicOptions,
};
use ioenc::kiss::{generate, BenchmarkSpec, Fsm};
use ioenc::nova::{nova_encode, NovaOptions};
use ioenc::symbolic::{
    input_constraints, input_constraints_with_dc, measure_encoded, mixed_constraints, OutputProfile,
};

fn small_fsm() -> Fsm {
    generate(&BenchmarkSpec::sized("flow", 10))
}

#[test]
fn mixed_flow_exact_encoding_verifies() {
    let fsm = small_fsm();
    let cs = mixed_constraints(&fsm, &OutputProfile::default());
    assert!(check_feasible(&cs).is_feasible());
    match exact_encode(&cs, &ExactOptions::default()) {
        Ok(enc) => {
            assert!(enc.verify(&cs).is_empty());
            let (cubes, lits) = measure_encoded(&fsm, &enc);
            assert!(cubes > 0 && lits > 0);
        }
        Err(EncodeError::Budget { .. }) => {
            // Acceptable outcome for an explosive instance; the check
            // itself must still have been feasible.
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn heuristic_beats_or_matches_naive_on_violations() {
    let fsm = small_fsm();
    let cs = input_constraints(&fsm);
    let heur = heuristic_encode(&cs, &HeuristicOptions::default()).unwrap();
    let naive = ioenc::core::Encoding::new(heur.width(), (0..fsm.num_states() as u64).collect());
    assert!(count_violations(&cs, &heur) <= count_violations(&cs, &naive));
}

#[test]
fn all_encoders_produce_injective_codes() {
    let fsm = small_fsm();
    let cs = input_constraints_with_dc(&fsm);
    let check = |enc: &ioenc::core::Encoding, label: &str| {
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), fsm.num_states(), "{label} collided");
    };
    check(
        &heuristic_encode(&cs, &HeuristicOptions::default()).unwrap(),
        "heuristic",
    );
    check(&nova_encode(&cs, &NovaOptions::default()), "nova");
    check(
        &anneal_encode(
            &cs,
            &AnnealOptions {
                cost: CostFunction::Violations,
                moves_per_temp: 4,
                steps: 15,
                ..Default::default()
            },
        ),
        "anneal",
    );
}

#[test]
fn kiss2_file_drives_the_same_flow() {
    let text = "\
.i 1
.o 1
.s 4
.r a
0 a a 0
1 a b 1
0 b c 1
1 b a 0
0 c d 0
1 c b 1
- d a 1
.e
";
    let fsm = Fsm::parse_kiss2(text).unwrap();
    let cs = input_constraints(&fsm);
    let enc = heuristic_encode(&cs, &HeuristicOptions::default()).unwrap();
    assert_eq!(enc.width(), 2);
    let (cubes, lits) = measure_encoded(&fsm, &enc);
    assert!(cubes >= 1 && lits >= 1);
}

#[test]
fn suite_small_members_flow_through_exact_encoding() {
    for name in ["dk512", "master"] {
        let fsm = ioenc::kiss::suite()
            .into_iter()
            .find(|f| f.name() == name)
            .unwrap();
        let cs = mixed_constraints(
            &fsm,
            &OutputProfile {
                max_dominance: 20,
                max_disjunctive: 3,
            },
        );
        let enc =
            exact_encode(&cs, &ExactOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(enc.verify(&cs).is_empty(), "{name} failed verification");
    }
}

#[test]
fn dc_constraints_never_hurt_width() {
    // Encoding don't cares only relax face constraints: the exact width
    // with them can never exceed the width with don't cares forced in.
    let fsm = generate(&BenchmarkSpec::sized("dcw", 8));
    let with_dc = input_constraints_with_dc(&fsm);
    let forced = {
        let mut cs = ioenc::core::ConstraintSet::new(8);
        for f in with_dc.faces() {
            let all: Vec<usize> = f.members.iter().chain(f.dont_cares.iter()).collect();
            cs.add_face(all);
        }
        cs
    };
    let w_dc = exact_encode(&with_dc, &ExactOptions::default())
        .unwrap()
        .width();
    let w_forced = exact_encode(&forced, &ExactOptions::default())
        .unwrap()
        .width();
    assert!(w_dc <= w_forced);
}

#[test]
fn sample_controllers_assign_cleanly() {
    use ioenc::symbolic::{assign_states, Strategy};
    for fsm in ioenc::kiss::samples::samples() {
        let a = assign_states(&fsm, &Strategy::HeuristicInput(CostFunction::Cubes))
            .unwrap_or_else(|e| panic!("{}: {e}", fsm.name()));
        let mut codes = a.encoding.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), fsm.num_states(), "{} collided", fsm.name());
        assert!(a.pla_cost.0 > 0);
    }
}
