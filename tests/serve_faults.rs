//! Fault-injection tests for the persistent serve cache.
//!
//! The contract under test: the disk-backed result cache survives the
//! worst a process can do to it — `kill -9` mid-batch, torn trailing
//! writes, a flipped payload byte — and in every case the next server
//! either replays a fully-validated record or silently re-solves; it
//! never serves a damaged result and never refuses to start. A second
//! battery checks the multi-process contract: two servers sharing one
//! cache directory solve each canonical key exactly once between them.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use ioenc::server::DiskCache;
use ioenc_rng::SplitMix64;

const FIXTURE_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/serve");

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("ioenc-faults-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn fixture_texts() -> Vec<String> {
    let mut paths: Vec<_> = std::fs::read_dir(FIXTURE_DIR)
        .expect("fixture dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| std::fs::read_to_string(p).expect("fixture"))
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn encode_request(id: usize, text: &str) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"encode\",\"text\":\"{}\"}}",
        json_escape(text)
    )
}

/// `ioenc encode --json` on `text`: the reference bytes the server must
/// reproduce, cache tier or no cache tier, before or after a crash.
fn cli_json(text: &str, tag: usize) -> String {
    let path =
        std::env::temp_dir().join(format!("ioenc-faults-ref-{}-{tag}.txt", std::process::id()));
    std::fs::write(&path, text).expect("write ref input");
    let out = Command::new(env!("CARGO_BIN_EXE_ioenc"))
        .args(["encode", path.to_str().expect("utf8 path"), "--json"])
        .output()
        .expect("reference CLI runs");
    let _ = std::fs::remove_file(&path);
    String::from_utf8(out.stdout)
        .expect("utf8 json")
        .trim_end()
        .to_string()
}

/// A TCP `ioenc serve` child plus a connected NDJSON stream.
struct TcpServer {
    child: Child,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Waits for the listen banner with a hard bound: panics with the exit
/// status if the server dies first, and after 30s if it never binds.
fn wait_for_banner(child: &mut Child) -> String {
    let stderr = child.stderr.take().expect("stderr piped");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut line = String::new();
        let _ = BufReader::new(stderr).read_line(&mut line);
        let _ = tx.send(line);
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("server exited before binding: {status}");
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(banner) if banner.contains("listening on") => return banner,
            Ok(other) => panic!("unexpected first stderr line: {other:?}"),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if Instant::now() > deadline {
                    let _ = child.kill();
                    panic!("server did not print its listen banner within 30s");
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("server closed stderr before printing its listen banner")
            }
        }
    }
}

impl TcpServer {
    fn spawn(cache_dir: &Path, extra: &[&str]) -> TcpServer {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ioenc"))
            .args([
                "serve",
                "--tcp",
                "0",
                "--workers",
                "4",
                "--queue",
                "256",
                "--cache-dir",
            ])
            .arg(cache_dir)
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let banner = wait_for_banner(&mut child);
        let addr = banner.trim().rsplit(' ').next().expect("addr").to_string();
        let stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        let writer = stream.try_clone().expect("clone");
        TcpServer {
            child,
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        line.trim_end().to_string()
    }

    /// Collects `n` responses into an id → full-line map.
    fn recv_n(&mut self, n: usize) -> HashMap<usize, String> {
        let mut got = HashMap::new();
        while got.len() < n {
            let line = self.recv();
            let id: usize = line
                .strip_prefix("{\"id\":")
                .and_then(|r| r.split(',').next())
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("malformed response: {line}"));
            got.insert(id, line);
        }
        got
    }

    fn stats(&mut self) -> String {
        self.send("{\"id\":777777,\"op\":\"stats\"}");
        self.recv()
    }

    fn shutdown(mut self) {
        self.send("{\"id\":999999,\"op\":\"shutdown\"}");
        let _ = self.recv();
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "server exit: {status}");
    }
}

/// Pulls the first integer after `"<field>":` out of a stats line.
fn stat_field(stats: &str, field: &str) -> u64 {
    stats
        .split(&format!("\"{field}\":"))
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no {field} in {stats}"))
}

/// The shard logs (sorted) under a cache directory.
fn shard_logs(dir: &Path) -> Vec<PathBuf> {
    let mut logs: Vec<_> = std::fs::read_dir(dir)
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".log"))
        })
        .collect();
    logs.sort();
    logs
}

/// `kill -9` mid-batch: the survivors' records replay, any torn tail is
/// dropped on reopen, and a fresh server serves the whole corpus with
/// bytes identical to the CLI.
#[test]
fn kill_nine_mid_batch_leaves_a_recoverable_cache() {
    let dir = TempDir::new("kill9");
    let fixtures = fixture_texts();
    let expected: Vec<String> = fixtures
        .iter()
        .enumerate()
        .map(|(i, t)| cli_json(t, i))
        .collect();

    let mut server = TcpServer::spawn(&dir.0, &["--shards", "2"]);
    // Queue a burst, but only wait for the first few responses: whatever
    // the server managed to append is what recovery gets to work with.
    let mut rng = SplitMix64::new(0x004b_1119);
    let burst: Vec<usize> = (0..48).map(|_| rng.gen_range(0..fixtures.len())).collect();
    for (id, &u) in burst.iter().enumerate() {
        server.send(&encode_request(id, &fixtures[u]));
    }
    let confirmed = server.recv_n(8);
    for (&id, line) in &confirmed {
        assert_eq!(
            line,
            &format!("{{\"id\":{id},\"v\":1,\"result\":{}}}", expected[burst[id]]),
            "pre-crash response diverged from the CLI"
        );
    }
    server.child.kill().expect("SIGKILL");
    let _ = server.child.wait();

    // The cache directory must reopen cleanly: a confirmed response
    // implies its record was appended (append happens before the
    // response is written), so recovery finds at least one record.
    let disk = DiskCache::open(&dir.0, 2).expect("reopen after kill -9");
    assert_eq!(disk.shard_count(), 2, "meta survives the crash");
    assert!(
        disk.indexed_records() >= 1,
        "confirmed responses imply recoverable records"
    );
    let recovered = disk
        .stats()
        .recovered
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(recovered >= 1, "open-time replay found no valid records");
    drop(disk);

    // Torn tail, deterministically: a record header claiming 200 payload
    // bytes with only 3 present. Reopen must truncate exactly that tail.
    let log = shard_logs(&dir.0)
        .into_iter()
        .next()
        .expect("at least one shard log");
    let before = std::fs::metadata(&log).expect("meta").len();
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&log)
        .expect("append");
    f.write_all(&[200, 0, 0, 0, 9, 9, 9]).expect("torn write");
    drop(f);
    let disk = DiskCache::open(&dir.0, 2).expect("reopen after torn write");
    assert_eq!(
        disk.stats()
            .torn_bytes
            .load(std::sync::atomic::Ordering::Relaxed),
        7,
        "the torn tail is dropped, nothing more"
    );
    assert_eq!(
        std::fs::metadata(&log).expect("meta").len(),
        before,
        "truncation restored the pre-tear length"
    );
    drop(disk);

    // A fresh server on the recovered directory serves the full corpus,
    // byte-identical to the CLI, warm-starting from the surviving records.
    let mut server = TcpServer::spawn(&dir.0, &["--shards", "2"]);
    for (id, &u) in burst.iter().enumerate() {
        server.send(&encode_request(id, &fixtures[u]));
    }
    let got = server.recv_n(burst.len());
    for (id, &u) in burst.iter().enumerate() {
        assert_eq!(
            got[&id],
            format!("{{\"id\":{id},\"v\":1,\"result\":{}}}", expected[u]),
            "post-recovery response diverged from the CLI"
        );
    }
    let stats = server.stats();
    assert!(
        stat_field(&stats, "records") >= 1,
        "disk tier reports no records: {stats}"
    );
    server.shutdown();
}

/// A flipped payload byte: the checksum rejects the record, the request
/// is re-solved (never served from the damaged entry), and the response
/// still matches the CLI byte-for-byte.
#[test]
fn corrupt_record_is_rejected_and_resolved() {
    let dir = TempDir::new("corrupt");
    let text = std::fs::read_to_string(format!("{FIXTURE_DIR}/section1.txt")).expect("fixture");
    let expected = cli_json(&text, 900);

    let mut server = TcpServer::spawn(&dir.0, &["--shards", "1"]);
    server.send(&encode_request(1, &text));
    assert_eq!(
        server.recv(),
        format!("{{\"id\":1,\"v\":1,\"result\":{expected}}}")
    );
    server.shutdown();

    // Flip one byte inside the record's payload (offset 16 header + 12
    // record header + 1): the checksum must now reject it.
    let log = shard_logs(&dir.0).into_iter().next().expect("shard log");
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&log)
        .expect("open log");
    f.seek(SeekFrom::Start(16 + 12 + 1)).expect("seek");
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte).expect("read byte");
    f.seek(SeekFrom::Start(16 + 12 + 1)).expect("seek back");
    f.write_all(&[byte[0] ^ 0xff]).expect("flip byte");
    drop(f);

    let mut server = TcpServer::spawn(&dir.0, &["--shards", "1"]);
    server.send(&encode_request(2, &text));
    assert_eq!(
        server.recv(),
        format!("{{\"id\":2,\"v\":1,\"result\":{expected}}}"),
        "a corrupt record must be re-solved, never served"
    );
    let stats = server.stats();
    assert!(
        stat_field(&stats, "rejected") >= 1,
        "open-time scan did not reject the corrupt record: {stats}"
    );
    // The re-solve wrote a replacement record.
    assert!(
        stat_field(&stats, "appends") >= 1,
        "re-solve did not repopulate the cache: {stats}"
    );
    server.shutdown();
}

/// Two server processes, one cache directory: a shuffled duplicate
/// corpus split between them yields identical responses everywhere, and
/// the cross-process single-flight guard holds total disk appends to
/// exactly one per canonical key.
#[test]
fn two_processes_share_one_cache_directory() {
    let dir = TempDir::new("two-proc");
    let fixtures = fixture_texts();
    let expected: Vec<String> = fixtures
        .iter()
        .enumerate()
        .map(|(i, t)| cli_json(t, i + 100))
        .collect();

    let mut a = TcpServer::spawn(&dir.0, &["--shards", "4"]);
    let mut b = TcpServer::spawn(&dir.0, &["--shards", "4"]);

    // Every fixture six times, shuffled, alternating between processes.
    let mut corpus: Vec<usize> = (0..fixtures.len() * 6)
        .map(|i| i % fixtures.len())
        .collect();
    SplitMix64::new(0x2b0b).shuffle(&mut corpus);
    for (id, &u) in corpus.iter().enumerate() {
        let server = if id % 2 == 0 { &mut a } else { &mut b };
        server.send(&encode_request(id, &fixtures[u]));
    }
    let got_a = a.recv_n(corpus.len().div_ceil(2));
    let got_b = b.recv_n(corpus.len() / 2);
    for (id, &u) in corpus.iter().enumerate() {
        let line = if id % 2 == 0 {
            &got_a[&id]
        } else {
            &got_b[&id]
        };
        assert_eq!(
            line,
            &format!("{{\"id\":{id},\"v\":1,\"result\":{}}}", expected[u]),
            "response diverged from the CLI (process {})",
            if id % 2 == 0 { "a" } else { "b" }
        );
    }

    // One solve per canonical key across BOTH processes: the sum of
    // their disk appends is exactly the number of unique fixtures.
    let appends_a = stat_field(&a.stats(), "appends");
    let appends_b = stat_field(&b.stats(), "appends");
    assert_eq!(
        appends_a + appends_b,
        fixtures.len() as u64,
        "single-flight violated: {appends_a} + {appends_b} appends for {} keys",
        fixtures.len()
    );

    a.shutdown();
    b.shutdown();
}
