//! Golden-file tests for `ioenc lint`.
//!
//! One fixture per diagnostic code lives in `tests/fixtures/lint/`; the
//! expected text and `--json` renderings live next to them in `golden/`.
//! Every invocation runs from the crate root with a relative fixture path
//! so the rendered origin (and therefore the golden bytes) is
//! machine-independent, and every fixture is rendered twice — once with
//! `--threads off` and once with `--threads auto` — which must agree
//! byte for byte.
//!
//! Regenerate the goldens after an intentional output change with
//! `UPDATE_GOLDEN=1 cargo test --test lint_cli`.

use std::path::Path;
use std::process::Command;

/// `(fixture stem, expected lint exit: true = success)`. Errors and
/// infeasibility fail the lint; warnings and notes do not.
const CASES: &[(&str, bool)] = &[
    ("e001", false),
    ("e002", false),
    ("e003", false),
    ("e004", false),
    ("e005", false),
    ("e006", false),
    ("e007", false),
    ("e008", false),
    ("w001", true),
    ("w002", true),
    ("w003", true),
    ("w004", true),
    ("w005", true),
    ("n001", true),
    ("n002", true),
    ("n003", true),
    ("clean", true),
];

fn run_lint(fixture: &str, extra: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ioenc"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .arg("lint")
        .arg(fixture)
        .args(extra)
        .output()
        .expect("spawn ioenc");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn check_golden(stem: &str, kind: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/lint/golden")
        .join(format!("{stem}.{kind}"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with UPDATE_GOLDEN=1)", path.display()));
    assert_eq!(
        actual, expected,
        "{stem}.{kind} drifted from its golden (UPDATE_GOLDEN=1 regenerates)"
    );
}

#[test]
fn lint_text_output_matches_goldens() {
    for &(stem, expect_ok) in CASES {
        let fixture = format!("tests/fixtures/lint/{stem}.txt");
        let (ok, stdout, stderr) = run_lint(&fixture, &[]);
        assert_eq!(ok, expect_ok, "{stem}: exit flipped\nstderr: {stderr}");
        assert!(stderr.is_empty(), "{stem}: unexpected stderr: {stderr}");
        check_golden(stem, "text", &stdout);
    }
}

#[test]
fn lint_json_output_matches_goldens() {
    for &(stem, expect_ok) in CASES {
        let fixture = format!("tests/fixtures/lint/{stem}.txt");
        let (ok, stdout, stderr) = run_lint(&fixture, &["--json"]);
        assert_eq!(ok, expect_ok, "{stem}: exit flipped\nstderr: {stderr}");
        assert!(stderr.is_empty(), "{stem}: unexpected stderr: {stderr}");
        check_golden(stem, "json", &stdout);
        // Cheap well-formedness proxy: balanced braces and brackets.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                stdout.matches(open).count(),
                stdout.matches(close).count(),
                "{stem}: unbalanced {open}{close}"
            );
        }
    }
}

#[test]
fn lint_output_is_byte_identical_across_thread_modes() {
    for &(stem, _) in CASES {
        let fixture = format!("tests/fixtures/lint/{stem}.txt");
        for extra in [&["--json"][..], &[][..]] {
            let mut off = vec!["--threads", "off"];
            off.extend_from_slice(extra);
            let mut auto = vec!["--threads", "auto"];
            auto.extend_from_slice(extra);
            let (ok_off, out_off, _) = run_lint(&fixture, &off);
            let (ok_auto, out_auto, _) = run_lint(&fixture, &auto);
            assert_eq!(ok_off, ok_auto, "{stem}: exit differs across --threads");
            assert_eq!(out_off, out_auto, "{stem}: output differs across --threads");
        }
    }
}

#[test]
fn deny_warnings_fails_warning_fixtures_only() {
    // A warning fixture passes by default and fails under --deny-warnings.
    let (ok, _, _) = run_lint("tests/fixtures/lint/w001.txt", &[]);
    assert!(ok);
    let (ok, _, _) = run_lint("tests/fixtures/lint/w001.txt", &["--deny-warnings"]);
    assert!(!ok);
    // Notes are not warnings: n001 stays green either way.
    let (ok, _, _) = run_lint("tests/fixtures/lint/n001.txt", &["--deny-warnings"]);
    assert!(ok);
    // A clean set is unaffected.
    let (ok, _, _) = run_lint("tests/fixtures/lint/clean.txt", &["--deny-warnings"]);
    assert!(ok);
}

#[test]
fn every_fixture_triggers_its_own_code() {
    // Each fixture's text golden must mention the code it is named for —
    // guards against a fixture drifting to a different diagnostic.
    for &(stem, _) in CASES {
        if stem == "clean" {
            continue;
        }
        let fixture = format!("tests/fixtures/lint/{stem}.txt");
        let (_, stdout, _) = run_lint(&fixture, &[]);
        let code = stem.to_uppercase();
        assert!(
            stdout.contains(&format!("[{code}]")),
            "{stem}: expected [{code}] in output:\n{stdout}"
        );
    }
}
