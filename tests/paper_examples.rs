//! End-to-end checks of every worked example in the paper, through the
//! public umbrella API.
// The free-function entry points are deprecated in favor of `Solver`,
// but must keep working until removal; this suite stays on them as
// coverage of the delegating wrappers.
#![allow(deprecated)]

use ioenc::core::{
    check_feasible, cost_of, exact_encode, exact_encode_report, generate_primes,
    initial_dichotomies, ConstraintSet, CostFunction, Dichotomy, EncodeError, Encoding,
    ExactOptions,
};

/// Section 1: the introductory mixed example has a 2-bit solution, e.g.
/// a=11, b=01, c=00, d=10.
#[test]
fn section_1_running_example() {
    let cs = ConstraintSet::parse(
        &["a", "b", "c", "d"],
        "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
    )
    .unwrap();
    // The paper's own solution verifies.
    let paper = Encoding::new(2, vec![0b11, 0b01, 0b00, 0b10]);
    assert!(paper.verify(&cs).is_empty());
    // And the exact encoder matches the minimum length.
    let report = exact_encode_report(&cs, &ExactOptions::default()).unwrap();
    assert!(report.optimal);
    assert_eq!(report.encoding.width(), 2);
    assert!(report.encoding.verify(&cs).is_empty());
}

/// Figure 3: 9 initial dichotomies (with the paper's symmetry pinning),
/// 7 prime dichotomies, minimum cover of 4.
#[test]
fn figure_3_pipeline() {
    let mut cs = ConstraintSet::new(5);
    cs.add_face([0, 2, 4]);
    cs.add_face([0, 1, 4]);
    cs.add_face([1, 2, 3]);
    cs.add_face([1, 3, 4]);
    let initial = initial_dichotomies(&cs, true);
    assert_eq!(initial.len(), 9);
    let primes = generate_primes(&initial, 10_000).unwrap();
    assert_eq!(primes.len(), 7);
    // The paper's four-prime minimum cover, modulo orientation.
    let paper_cover = [
        Dichotomy::from_blocks(5, [0, 2, 4], [1, 3]),
        Dichotomy::from_blocks(5, [2, 3], [0, 1, 4]),
        Dichotomy::from_blocks(5, [0, 4], [1, 2, 3]),
        Dichotomy::from_blocks(5, [0, 2], [1, 3, 4]),
    ];
    for p in &paper_cover {
        assert!(primes.iter().any(|q| q == p || *q == p.flipped()));
    }
    let report = exact_encode_report(&cs, &ExactOptions::default()).unwrap();
    assert_eq!(report.encoding.width(), 4);
    assert!(report.encoding.verify(&cs).is_empty());
}

/// Figure 4: the mixed set is infeasible with exactly the uncovered pair
/// (s0; s1 s5) / (s1 s5; s0) — the instance the Devadas–Newton check
/// wrongly accepts.
#[test]
fn figure_4_infeasibility() {
    let names = ["s0", "s1", "s2", "s3", "s4", "s5"];
    let cs = ConstraintSet::parse(
        &names,
        "(s1,s5)\n(s2,s5)\n(s4,s5)\n\
         s0>s1\ns0>s2\ns0>s3\ns0>s5\ns1>s3\ns2>s3\ns4>s5\ns5>s2\ns5>s3\n\
         s0=s1|s2",
    )
    .unwrap();
    let r = check_feasible(&cs);
    assert_eq!(r.initial.len(), 26);
    assert!(!r.is_feasible());
    let mut uncovered = r.uncovered.clone();
    uncovered.sort();
    assert_eq!(
        uncovered,
        vec![
            Dichotomy::from_blocks(6, [0], [1, 5]),
            Dichotomy::from_blocks(6, [1, 5], [0]),
        ]
    );
    // The paper's six raised dichotomies all appear.
    for (l, r_block) in [
        (vec![1, 3], vec![0, 2, 4, 5]),
        (vec![2, 3], vec![0, 1, 4, 5]),
        (vec![2, 3, 4, 5], vec![0, 1]),
        (vec![0, 1, 2, 3, 5], vec![4]),
        (vec![2, 3, 5], vec![0, 1]),
        (vec![2, 3, 5], vec![4]),
    ] {
        let d = Dichotomy::from_blocks(6, l, r_block);
        assert!(r.raised.contains(&d), "missing {d:?}");
    }
    // The exact encoder reports the same infeasibility.
    assert!(matches!(
        exact_encode(&cs, &ExactOptions::default()),
        Err(EncodeError::Infeasible { .. })
    ));
}

/// Figure 8: the mixed example solves in 2 bits; the paper's encoding
/// s0=11, s1=10, s2=00, s3=01 verifies.
#[test]
fn figure_8_exact_mixed() {
    let cs =
        ConstraintSet::parse(&["s0", "s1", "s2", "s3"], "(s0,s1)\ns0>s1\ns1>s2\ns0=s1|s3").unwrap();
    let paper = Encoding::new(2, vec![0b11, 0b10, 0b00, 0b01]);
    assert!(paper.verify(&cs).is_empty());
    let enc = exact_encode(&cs, &ExactOptions::default()).unwrap();
    assert_eq!(enc.width(), 2);
    assert!(enc.verify(&cs).is_empty());
}

/// Section 7 / Figure 9: the constraint set needs 4 bits when everything
/// must hold; the paper's 4-bit encoding costs 4 cubes, and any 3-bit
/// encoding violates constraints and pays more cubes.
#[test]
fn figure_9_cost_shapes() {
    let names = ["a", "b", "c", "d", "e", "f", "g"];
    let cs = ConstraintSet::parse(&names, "(e,f,c)\n(e,d,g)\n(a,b,d)\n(a,g,f,d)").unwrap();
    let four = Encoding::new(
        4,
        vec![0b1010, 0b0010, 0b0011, 0b1110, 0b0111, 0b1011, 0b1100],
    );
    assert!(four.verify(&cs).is_empty());
    assert_eq!(cost_of(&cs, &four, CostFunction::Cubes), 4);
    let three = Encoding::new(3, vec![0b010, 0b110, 0b111, 0b000, 0b101, 0b011, 0b001]);
    let violations = cost_of(&cs, &three, CostFunction::Violations);
    assert!(violations >= 1);
    assert!(cost_of(&cs, &three, CostFunction::Cubes) > 4);
    assert!(
        cost_of(&cs, &three, CostFunction::Literals) > cost_of(&cs, &four, CostFunction::Literals)
    );
}

/// Section 8.1: the don't-care example — 3 primes with don't cares, 4
/// without (in either direction).
#[test]
fn section_8_1_dont_cares() {
    let names = ["a", "b", "c", "d", "e", "f"];
    let cases = [
        ("(a,b)\n(a,c)\n(a,d)\n(a,b,[c,d],e)", 3),
        ("(a,b)\n(a,c)\n(a,d)\n(a,b,c,d,e)", 4),
        ("(a,b)\n(a,c)\n(a,d)\n(a,b,e)", 4),
    ];
    for (text, bits) in cases {
        let cs = ConstraintSet::parse(&names, text).unwrap();
        let enc = exact_encode(&cs, &ExactOptions::default()).unwrap();
        assert_eq!(enc.width(), bits, "constraints: {text}");
        assert!(enc.verify(&cs).is_empty());
    }
}

/// Section 8.2: distance-2 constraints hold in the exact encoder.
#[test]
fn section_8_2_distance_2() {
    let mut cs = ConstraintSet::new(5);
    cs.add_face([0, 1]);
    cs.add_face([2, 3]);
    cs.add_distance2(0, 1);
    cs.add_distance2(2, 4);
    let enc = exact_encode(&cs, &ExactOptions::default()).unwrap();
    assert!(enc.verify(&cs).is_empty());
    assert!(ioenc::core::hamming(enc.code(0), enc.code(1)) >= 2);
    assert!(ioenc::core::hamming(enc.code(2), enc.code(4)) >= 2);
}

/// Section 8.3: the non-face example; the paper's 3-bit encoding verifies
/// and the solver finds a satisfying encoding of at most that width.
#[test]
fn section_8_3_non_face() {
    let names = ["a", "b", "c", "d", "e", "f"];
    let cs = ConstraintSet::parse(&names, "(a,b)\n(b,c,d)\n(a,e)\n(d,f)\n!(a,b,e)").unwrap();
    let paper = Encoding::new(3, vec![0b011, 0b001, 0b101, 0b100, 0b111, 0b110]);
    assert!(paper.verify(&cs).is_empty());
    let enc = exact_encode(&cs, &ExactOptions::default()).unwrap();
    assert!(enc.verify(&cs).is_empty());
    assert!(enc.width() <= 3);
}

/// Section 6.2: the extended disjunctive example
/// (a∧b∧c)∨(a∧d∧e)∨(a∧f∧g)=a, reduced to (b∧c)∨(d∧e)∨(f∧g) >= a.
#[test]
fn section_6_2_extended_disjunctive() {
    let names = ["a", "b", "c", "d", "e", "f", "g"];
    let cs = ConstraintSet::parse(&names, "(b&c)|(d&e)|(f&g)>=a").unwrap();
    assert!(check_feasible(&cs).is_feasible());
    let enc = exact_encode(&cs, &ExactOptions::default()).unwrap();
    assert!(enc.verify(&cs).is_empty());
}

/// The parallel solver core must be bit-identical at every thread count:
/// same codes, same statistics-relevant counts, only wall clock may differ.
#[test]
fn parallelism_is_bit_identical_on_section_1() {
    use ioenc::core::{HeuristicOptions, Parallelism};

    let cs = ConstraintSet::parse(
        &["a", "b", "c", "d"],
        "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
    )
    .unwrap();
    let settings = [
        Parallelism::Off,
        Parallelism::Fixed(1),
        Parallelism::Fixed(4),
    ];

    let exact: Vec<_> = settings
        .iter()
        .map(|&p| exact_encode_report(&cs, &ExactOptions::new().with_parallelism(p)).unwrap())
        .collect();
    for r in &exact[1..] {
        assert_eq!(r.encoding.codes(), exact[0].encoding.codes());
        assert_eq!(r.num_primes, exact[0].num_primes);
        assert_eq!(r.stats.num_primes, exact[0].stats.num_primes);
    }

    let heur: Vec<_> = settings
        .iter()
        .map(|&p| {
            ioenc::core::heuristic_encode(
                &cs,
                &HeuristicOptions::new()
                    .with_cost(CostFunction::Cubes)
                    .with_parallelism(p),
            )
            .unwrap()
        })
        .collect();
    for e in &heur[1..] {
        assert_eq!(e.codes(), heur[0].codes());
    }
}

/// The same determinism guarantee on real KISS2 benchmark machines, end to
/// end through constraint generation and both encoders.
#[test]
fn parallelism_is_bit_identical_on_kiss2_benchmarks() {
    use ioenc::core::{heuristic_encode, HeuristicOptions, Parallelism};
    use ioenc::kiss::samples::samples;
    use ioenc::symbolic::input_constraints;

    let settings = [
        Parallelism::Off,
        Parallelism::Fixed(1),
        Parallelism::Fixed(4),
    ];
    let machines = samples();
    assert!(machines.len() >= 2);
    for fsm in &machines {
        let cs = input_constraints(fsm);

        let exact: Vec<_> = settings
            .iter()
            .map(|&p| exact_encode_report(&cs, &ExactOptions::new().with_parallelism(p)).unwrap())
            .collect();
        for r in &exact[1..] {
            assert_eq!(
                r.encoding.codes(),
                exact[0].encoding.codes(),
                "exact codes differ across thread counts on {}",
                fsm.name()
            );
            assert_eq!(r.num_primes, exact[0].num_primes, "{}", fsm.name());
        }

        let heur: Vec<_> = settings
            .iter()
            .map(|&p| {
                heuristic_encode(
                    &cs,
                    &HeuristicOptions::new()
                        .with_cost(CostFunction::Cubes)
                        .with_parallelism(p),
                )
                .unwrap()
            })
            .collect();
        for e in &heur[1..] {
            assert_eq!(
                e.codes(),
                heur[0].codes(),
                "heuristic codes differ across thread counts on {}",
                fsm.name()
            );
        }
    }
}
