#!/usr/bin/env python3
"""Smoke-test `ioenc serve` on a loopback TCP port against the one-shot CLI.

Usage: serve-smoke.py <path-to-ioenc-binary> [--workers N]

Starts the server with `--tcp 0` (ephemeral port), replays every fixture
in tests/fixtures/serve/ twice (duplicates exercise the result cache),
and requires each protocol-v1 response (`{"id":..,"v":1,"result":..}`)
to wrap the exact bytes of `ioenc encode --json` on the same file. Then
runs an open/delta/close session round-trip and requires the incremental
codes to match a one-shot CLI encode of the edited set. Finally asserts
the cache reported hits and that shutdown drains cleanly. Exits non-zero
on any divergence.
"""

import json
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FIXTURES = sorted((REPO / "tests" / "fixtures" / "serve").glob("*.txt"))


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary = sys.argv[1]
    workers = "4"
    if "--workers" in sys.argv:
        workers = sys.argv[sys.argv.index("--workers") + 1]
    if not FIXTURES:
        print("no fixtures under tests/fixtures/serve/", file=sys.stderr)
        return 1

    server = subprocess.Popen(
        [binary, "serve", "--tcp", "0", "--workers", workers],
        stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = server.stderr.readline().strip()
        addr = banner.rsplit(" ", 1)[-1]
        host, port = addr.rsplit(":", 1)

        expected = {}
        requests = []
        rid = 0
        for _ in range(2):  # two passes: the second is all cache hits
            for f in FIXTURES:
                rid += 1
                cli = subprocess.run(
                    [binary, "encode", str(f), "--json"],
                    capture_output=True,
                    text=True,
                    check=True,
                )
                expected[rid] = '{"id":%d,"v":1,"result":%s}' % (rid, cli.stdout.strip())
                requests.append(
                    json.dumps(
                        {"id": rid, "op": "encode", "text": f.read_text()},
                        separators=(",", ":"),
                    )
                )

        deadline = time.monotonic() + 30
        sock = None
        while sock is None:
            try:
                sock = socket.create_connection((host, int(port)), timeout=5)
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
        sock.settimeout(60)
        reader = sock.makefile("r", encoding="utf-8", newline="\n")
        writer = sock.makefile("w", encoding="utf-8", newline="\n")
        for line in requests:
            writer.write(line + "\n")
        writer.flush()

        failures = 0
        for _ in range(len(requests)):
            line = reader.readline().strip()
            got_id = json.loads(line)["id"]
            if line != expected[got_id]:
                failures += 1
                print(f"MISMATCH id={got_id}", file=sys.stderr)
                print(f"  serve: {line}", file=sys.stderr)
                print(f"  cli:   {expected[got_id]}", file=sys.stderr)

        # Protocol-v1 session round-trip: open a session, apply one
        # incremental delta, and require the re-solved codes to match a
        # one-shot CLI encode of the edited set.
        base = "symbols: a b c d\n(b,c)\n(c,d)\n"
        writer.write(
            json.dumps(
                {"id": 9001, "op": "open", "text": base}, separators=(",", ":")
            )
            + "\n"
        )
        writer.flush()
        opened = json.loads(reader.readline())
        if opened.get("v") != 1 or not opened["result"].get("ok"):
            print(f"open failed: {opened}", file=sys.stderr)
            failures += 1
        sid = opened["result"]["session"]
        writer.write(
            json.dumps(
                {"id": 9002, "op": "delta", "session": sid, "add": ["a>c"]},
                separators=(",", ":"),
            )
            + "\n"
        )
        writer.flush()
        delta = json.loads(reader.readline())
        if delta.get("v") != 1 or not delta["result"].get("ok"):
            print(f"delta failed: {delta}", file=sys.stderr)
            failures += 1
        elif not delta["result"]["reuse"]["incremental"]:
            print(f"delta was not incremental: {delta}", file=sys.stderr)
            failures += 1
        else:
            cli = subprocess.run(
                [binary, "encode", "/dev/stdin", "--json"],
                input=base + "a>c\n",
                capture_output=True,
                text=True,
                check=True,
            )
            want = json.loads(cli.stdout)["codes"]
            if delta["result"]["codes"] != want:
                print(
                    f"delta codes diverge from CLI: {delta['result']['codes']} vs {want}",
                    file=sys.stderr,
                )
                failures += 1
        writer.write(
            json.dumps(
                {"id": 9003, "op": "close", "session": sid}, separators=(",", ":")
            )
            + "\n"
        )
        writer.flush()
        closed = json.loads(reader.readline())
        if not closed["result"].get("closed"):
            print(f"close failed: {closed}", file=sys.stderr)
            failures += 1

        writer.write('{"id":0,"op":"stats"}\n')
        writer.flush()
        stats = json.loads(reader.readline())["result"]
        hits = stats["cache"]["hits"]
        # Concurrent workers may race duplicate requests past each other's
        # inserts, so only a floor of one hit is deterministic.
        if hits == 0:
            print("expected nonzero cache hits on a duplicated corpus", file=sys.stderr)
            failures += 1

        writer.write('{"id":0,"op":"shutdown"}\n')
        writer.flush()
        reader.readline()  # shutdown ack
        sock.close()
        code = server.wait(timeout=30)
        if code != 0:
            print(f"server exited with {code}", file=sys.stderr)
            failures += 1

        n = len(requests)
        if failures:
            print(f"serve-smoke: {failures} failure(s) over {n} requests", file=sys.stderr)
            return 1
        print(
            f"serve-smoke: {n} responses byte-identical to the CLI "
            f"(workers={workers}, cache hits={hits})"
        )
        return 0
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
