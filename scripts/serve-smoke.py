#!/usr/bin/env python3
"""Smoke-test `ioenc serve` on a loopback TCP port against the one-shot CLI.

Usage: serve-smoke.py <path-to-ioenc-binary> [--workers N]

Starts the server with `--tcp 0` (ephemeral port), replays every fixture
in tests/fixtures/serve/ twice (duplicates exercise the result cache),
and requires each protocol-v1 response (`{"id":..,"v":1,"result":..}`)
to wrap the exact bytes of `ioenc encode --json` on the same file. Then
runs an open/delta/close session round-trip and requires the incremental
codes to match a one-shot CLI encode of the edited set. Finally asserts
the cache reported hits and that shutdown drains cleanly. Exits non-zero
on any divergence.
"""

import json
import queue
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FIXTURES = sorted((REPO / "tests" / "fixtures" / "serve").glob("*.txt"))


def read_banner(server, timeout=30.0):
    """Reads the `listening on` stderr banner with a hard bound.

    Fails fast (with the exit code) if the server dies before binding,
    and after `timeout` seconds if it never prints the banner — the same
    bound tests/serve.rs applies — instead of hanging the harness.
    """
    lines = queue.Queue()
    threading.Thread(
        target=lambda: lines.put(server.stderr.readline()), daemon=True
    ).start()
    deadline = time.monotonic() + timeout
    while True:
        code = server.poll()
        if code is not None:
            raise SystemExit(f"server exited before binding: {code}")
        try:
            banner = lines.get(timeout=0.05).strip()
        except queue.Empty:
            if time.monotonic() > deadline:
                server.kill()
                raise SystemExit(f"server did not bind within {timeout}s")
            continue
        if "listening on" not in banner:
            raise SystemExit(f"unexpected first stderr line: {banner!r}")
        return banner.rsplit(" ", 1)[-1].rsplit(":", 1)


def connect(host, port, timeout=30.0):
    deadline = time.monotonic() + timeout
    while True:
        try:
            sock = socket.create_connection((host, int(port)), timeout=5)
            sock.settimeout(60)
            return sock
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)


def read_http_response(f):
    """Reads one HTTP/1.1 response from a buffered reader; returns
    (status, body-bytes).

    Takes a `sock.makefile("rb")` object rather than the socket so that
    pipelined responses arriving in one TCP segment are not lost between
    calls. Returns (None, b"") on a clean close before any status line.
    """
    status_line = f.readline()
    if not status_line:
        return None, b""
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = f.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = f.read(length)
    if len(body) < length:
        raise SystemExit(f"connection closed mid-body ({len(body)}/{length})")
    return status, body


def http_battery(binary, workers):
    """HTTP/1.1 conformance against a live `--http` server.

    Pipelining, oversized headers, slowloris partial writes and abrupt
    disconnects must each produce a typed error or a clean close — and
    never wedge the server, which has to keep answering afterwards.
    """
    failures = 0
    server = subprocess.Popen(
        [binary, "serve", "--tcp", "0", "--http", "--workers", workers],
        stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        host, port = read_banner(server)
        text = FIXTURES[0].read_text()
        cli = subprocess.run(
            [binary, "encode", str(FIXTURES[0]), "--json"],
            capture_output=True,
            text=True,
            check=True,
        )

        def post(rid):
            body = json.dumps(
                {"id": rid, "op": "encode", "text": text}, separators=(",", ":")
            ).encode()
            return b"POST / HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s" % (len(body), body)

        # 1. Three pipelined POSTs in one write: in-order 200s wrapping
        # the exact CLI bytes.
        sock = connect(host, port)
        f = sock.makefile("rb")
        sock.sendall(post(1) + post(2) + post(3))
        for rid in (1, 2, 3):
            status, body = read_http_response(f)
            want = '{"id":%d,"v":1,"result":%s}\n' % (rid, cli.stdout.strip())
            if status != 200 or body.decode() != want:
                failures += 1
                print(f"pipelined POST {rid}: {status} {body!r}", file=sys.stderr)
        # GET /stats rides the same keep-alive connection.
        sock.sendall(b"GET /stats HTTP/1.1\r\n\r\n")
        status, body = read_http_response(f)
        if status != 200 or b'"queue"' not in body:
            failures += 1
            print(f"GET /stats: {status} {body!r}", file=sys.stderr)
        sock.close()

        # 2. Oversized header block: typed 431, then a clean close.
        sock = connect(host, port)
        f = sock.makefile("rb")
        sock.sendall(b"POST / HTTP/1.1\r\nx-pad: " + b"a" * 20000 + b"\r\n\r\n")
        status, body = read_http_response(f)
        if status != 431:
            failures += 1
            print(f"oversized headers: expected 431, got {status}", file=sys.stderr)
        if read_http_response(f)[0] is not None:
            failures += 1
            print("oversized-header connection not closed", file=sys.stderr)
        sock.close()

        # 3. Slowloris: the same valid POST, dribbled a few bytes at a
        # time, must still get the full 200.
        sock = connect(host, port)
        f = sock.makefile("rb")
        payload = post(4)
        for i in range(0, len(payload), 7):
            sock.sendall(payload[i : i + 7])
            time.sleep(0.002)
        status, body = read_http_response(f)
        want = '{"id":4,"v":1,"result":%s}\n' % cli.stdout.strip()
        if status != 200 or body.decode() != want:
            failures += 1
            print(f"slowloris POST: {status} {body!r}", file=sys.stderr)
        sock.close()

        # 4. Slowloris abandoned mid-head, and 5. abrupt disconnect right
        # after a full request: both just close; the server must keep
        # answering new connections (checked by the probes below).
        sock = connect(host, port)
        sock.sendall(b"POST / HTTP/1.1\r\ncontent-le")
        sock.close()
        sock = connect(host, port)
        sock.sendall(post(5))
        sock.close()  # response (if any) goes nowhere

        # 6. Unknown target and bad method: typed 404 / 405.
        sock = connect(host, port)
        f = sock.makefile("rb")
        sock.sendall(b"GET /nope HTTP/1.1\r\n\r\n")
        status, _ = read_http_response(f)
        if status != 404:
            failures += 1
            print(f"GET /nope: expected 404, got {status}", file=sys.stderr)
        sock.close()
        sock = connect(host, port)
        f = sock.makefile("rb")
        sock.sendall(b"PUT / HTTP/1.1\r\ncontent-length: 0\r\n\r\n")
        status, _ = read_http_response(f)
        if status != 405:
            failures += 1
            print(f"PUT: expected 405, got {status}", file=sys.stderr)
        sock.close()

        # 7. Shutdown over HTTP; the server must exit 0.
        sock = connect(host, port)
        f = sock.makefile("rb")
        body = b'{"id":9,"op":"shutdown"}'
        sock.sendall(
            b"POST / HTTP/1.1\r\ncontent-length: %d\r\nconnection: close\r\n\r\n%s"
            % (len(body), body)
        )
        status, body = read_http_response(f)
        if status != 200 or b'"shutting_down":true' not in body:
            failures += 1
            print(f"HTTP shutdown: {status} {body!r}", file=sys.stderr)
        sock.close()
        code = server.wait(timeout=30)
        if code != 0:
            failures += 1
            print(f"server exited with {code} after HTTP battery", file=sys.stderr)
        if not failures:
            print(f"serve-smoke: HTTP battery clean (workers={workers})")
        return failures
    finally:
        if server.poll() is None:
            server.kill()


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary = sys.argv[1]
    workers = "4"
    if "--workers" in sys.argv:
        workers = sys.argv[sys.argv.index("--workers") + 1]
    if not FIXTURES:
        print("no fixtures under tests/fixtures/serve/", file=sys.stderr)
        return 1

    server = subprocess.Popen(
        [binary, "serve", "--tcp", "0", "--workers", workers],
        stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        host, port = read_banner(server)

        expected = {}
        requests = []
        rid = 0
        for _ in range(2):  # two passes: the second is all cache hits
            for f in FIXTURES:
                rid += 1
                cli = subprocess.run(
                    [binary, "encode", str(f), "--json"],
                    capture_output=True,
                    text=True,
                    check=True,
                )
                expected[rid] = '{"id":%d,"v":1,"result":%s}' % (rid, cli.stdout.strip())
                requests.append(
                    json.dumps(
                        {"id": rid, "op": "encode", "text": f.read_text()},
                        separators=(",", ":"),
                    )
                )

        sock = connect(host, port)
        reader = sock.makefile("r", encoding="utf-8", newline="\n")
        writer = sock.makefile("w", encoding="utf-8", newline="\n")
        for line in requests:
            writer.write(line + "\n")
        writer.flush()

        failures = 0
        for _ in range(len(requests)):
            line = reader.readline().strip()
            got_id = json.loads(line)["id"]
            if line != expected[got_id]:
                failures += 1
                print(f"MISMATCH id={got_id}", file=sys.stderr)
                print(f"  serve: {line}", file=sys.stderr)
                print(f"  cli:   {expected[got_id]}", file=sys.stderr)

        # Protocol-v1 session round-trip: open a session, apply one
        # incremental delta, and require the re-solved codes to match a
        # one-shot CLI encode of the edited set.
        base = "symbols: a b c d\n(b,c)\n(c,d)\n"
        writer.write(
            json.dumps(
                {"id": 9001, "op": "open", "text": base}, separators=(",", ":")
            )
            + "\n"
        )
        writer.flush()
        opened = json.loads(reader.readline())
        if opened.get("v") != 1 or not opened["result"].get("ok"):
            print(f"open failed: {opened}", file=sys.stderr)
            failures += 1
        sid = opened["result"]["session"]
        writer.write(
            json.dumps(
                {"id": 9002, "op": "delta", "session": sid, "add": ["a>c"]},
                separators=(",", ":"),
            )
            + "\n"
        )
        writer.flush()
        delta = json.loads(reader.readline())
        if delta.get("v") != 1 or not delta["result"].get("ok"):
            print(f"delta failed: {delta}", file=sys.stderr)
            failures += 1
        elif not delta["result"]["reuse"]["incremental"]:
            print(f"delta was not incremental: {delta}", file=sys.stderr)
            failures += 1
        else:
            cli = subprocess.run(
                [binary, "encode", "/dev/stdin", "--json"],
                input=base + "a>c\n",
                capture_output=True,
                text=True,
                check=True,
            )
            want = json.loads(cli.stdout)["codes"]
            if delta["result"]["codes"] != want:
                print(
                    f"delta codes diverge from CLI: {delta['result']['codes']} vs {want}",
                    file=sys.stderr,
                )
                failures += 1
        writer.write(
            json.dumps(
                {"id": 9003, "op": "close", "session": sid}, separators=(",", ":")
            )
            + "\n"
        )
        writer.flush()
        closed = json.loads(reader.readline())
        if not closed["result"].get("closed"):
            print(f"close failed: {closed}", file=sys.stderr)
            failures += 1

        writer.write('{"id":0,"op":"stats"}\n')
        writer.flush()
        stats = json.loads(reader.readline())["result"]
        hits = stats["cache"]["hits"]
        # Concurrent workers may race duplicate requests past each other's
        # inserts, so only a floor of one hit is deterministic.
        if hits == 0:
            print("expected nonzero cache hits on a duplicated corpus", file=sys.stderr)
            failures += 1

        writer.write('{"id":0,"op":"shutdown"}\n')
        writer.flush()
        reader.readline()  # shutdown ack
        sock.close()
        code = server.wait(timeout=30)
        if code != 0:
            print(f"server exited with {code}", file=sys.stderr)
            failures += 1

        n = len(requests)
        if failures:
            print(f"serve-smoke: {failures} failure(s) over {n} requests", file=sys.stderr)
            return 1
        print(
            f"serve-smoke: {n} responses byte-identical to the CLI "
            f"(workers={workers}, cache hits={hits})"
        )
    finally:
        if server.poll() is None:
            server.kill()

    return 1 if http_battery(binary, workers) else 0


if __name__ == "__main__":
    sys.exit(main())
