//! `ioenc` — command-line front end for the encoding-constraint framework.
//!
//! ```text
//! ioenc check <constraints-file>                 feasibility (P-1)
//! ioenc lint <constraints-file> [--json]         static analysis + conflict cores
//! ioenc canon <constraints-file>                 canonical form + content key
//! ioenc encode <constraints-file> [options]      exact or heuristic codes
//! ioenc session <constraints-file>               incremental re-solve loop
//! ioenc serve [--workers N] [--tcp PORT]         NDJSON batch-encoding service
//! ioenc primes <constraints-file> [--cap N]      prime encoding-dichotomies
//! ioenc fsm <kiss2-file> [--mixed] [--dc]        constraints from an FSM
//! ioenc table <constraints-file>                 the Section 4 binate table
//! ```
//!
//! Constraint files use the [`ConstraintSet::parse`] syntax preceded by a
//! `symbols: a b c …` header line:
//!
//! ```text
//! symbols: a b c d
//! (b,c)
//! (c,d)
//! a>c
//! a=b|d
//! ```
//!
//! Encoding results go to stdout; solver statistics go to stderr, so the
//! codes stay byte-identical across thread counts and pipe cleanly.
//!
//! Exit codes are consistent across subcommands, one per
//! [`EncodeError`] class: 0 success, 2 parse, 3 io, 4 limit, 5 budget,
//! 6 infeasible (1 is reserved for other failures, e.g.
//! `lint --deny-warnings`).

#![forbid(unsafe_code)]

use ioenc::core::lint::{lint, LintOptions};
use ioenc::core::{
    canonical_form, check_feasible, generate_primes_with, initial_dichotomies, BinateFormulation,
    ConstraintSet, CostFunction, EncodeError, Parallelism,
};
use ioenc::espresso::{cover_to_pla_text, parse_pla_text};
use ioenc::kiss::Fsm;
use ioenc::server::{
    outcome, serve_stdio, serve_tcp, solve_fresh, EncodeSpec, Mode, ModeOutcome, ServeOptions,
};
use ioenc::symbolic::{
    assign_states, input_constraints, input_constraints_with_dc, mixed_constraints, OutputProfile,
    Strategy,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "\
usage:
  ioenc check  <constraints-file>
  ioenc lint   <constraints-file> [--json] [--deny-warnings]
               [--threads auto|off|N]
  ioenc canon  <constraints-file>
  ioenc encode <constraints-file> [--json] [--heuristic] [--bits N]
               [--cost violations|cubes|literals] [--prime-cap N]
               [--auto] [--max-primes N] [--max-nodes N] [--max-evals N]
               [--max-ps-steps N] [--deadline-ms T]
               [--threads auto|off|N]
  ioenc session <constraints-file> [--auto] [--prime-cap N]
               [--threads auto|off|N]
               (then add/remove/show/quit commands on stdin)
  ioenc serve  [--workers N] [--queue N] [--cache N|off] [--tcp PORT]
               [--http] [--cache-dir PATH] [--shards N]
  ioenc primes <constraints-file> [--cap N] [--threads auto|off|N]
  ioenc fsm    <kiss2-file> [--mixed] [--dc] [--assign]
  ioenc table  <constraints-file>
  ioenc minimize <pla-file>
exit codes: 0 success, 2 parse, 3 io, 4 limit, 5 budget, 6 infeasible";

/// Positional-free flag helpers over a tail-of-argv slice.
struct Flags<'a> {
    rest: &'a [&'a String],
}

impl<'a> Flags<'a> {
    fn flag(&self, name: &str) -> bool {
        self.rest.iter().any(|a| *a == name)
    }

    fn value(&self, name: &str) -> Option<&'a str> {
        self.rest
            .iter()
            .position(|a| *a == name)
            .and_then(|i| self.rest.get(i + 1))
            .map(|s| s.as_str())
    }

    fn number(&self, name: &str) -> Result<Option<usize>, EncodeError> {
        match self.value(name) {
            Some(v) => v
                .parse::<usize>()
                .map_err(|e| EncodeError::parse(format!("{name} {v}: {e}")))
                .map(Some),
            None if self.flag(name) => Err(EncodeError::parse(format!("{name} requires a value"))),
            None => Ok(None),
        }
    }

    fn threads(&self) -> Result<Parallelism, EncodeError> {
        if self.flag("--threads") && self.value("--threads").is_none() {
            return Err(EncodeError::parse(
                "--threads requires a value (auto|off|N)",
            ));
        }
        Ok(match self.value("--threads") {
            None | Some("auto") => Parallelism::Auto,
            Some("off") => Parallelism::Off,
            Some(v) => {
                let n = v
                    .parse::<usize>()
                    .map_err(|e| EncodeError::parse(format!("--threads {v}: {e}")))?;
                if n == 0 {
                    return Err(EncodeError::limit("--threads must be positive (or 'off')"));
                }
                Parallelism::Fixed(n)
            }
        })
    }
}

fn run(args: &[String]) -> Result<ExitCode, EncodeError> {
    let mut it = args.iter();
    let cmd = it
        .next()
        .ok_or_else(|| EncodeError::parse("missing subcommand"))?;
    let tail: Vec<&String> = it.collect();

    if cmd == "serve" {
        return run_serve(&Flags { rest: &tail });
    }

    let path = tail
        .first()
        .map(|s| s.as_str())
        .ok_or_else(|| EncodeError::parse("missing input file"))?;
    let rest = &tail[1..];
    let f = Flags { rest };
    let text = std::fs::read_to_string(path).map_err(|e| EncodeError::io(path, &e))?;

    match cmd.as_str() {
        "check" => {
            let cs = parse_constraints(&text)?;
            let r = check_feasible(&cs);
            println!(
                "{} initial encoding-dichotomies, {} valid after raising",
                r.initial.len(),
                r.raised.len()
            );
            if r.is_feasible() {
                println!("FEASIBLE");
            } else {
                println!("INFEASIBLE — uncovered initial encoding-dichotomies:");
                for d in &r.uncovered {
                    println!("  {}", d.display(&cs));
                }
                let report = lint(&cs, &LintOptions::new());
                print!("{}", report.render(&cs, Some(path)));
            }
            Ok(ExitCode::SUCCESS)
        }
        "lint" => {
            let cs = parse_constraints(&text)?;
            f.threads()?; // validated for CLI uniformity; the lint is single-threaded
            let report = lint(&cs, &LintOptions::new());
            if f.flag("--json") {
                print!("{}", report.render_json(&cs, Some(path)));
            } else {
                print!("{}", report.render(&cs, Some(path)));
            }
            Ok(if report.has_errors() || !report.feasible {
                // The infeasibility exit class, same as `encode`.
                ExitCode::from(EncodeError::infeasible(vec![]).exit_code())
            } else if f.flag("--deny-warnings") && report.warnings() > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "canon" => {
            let cs = parse_constraints(&text)?;
            let form = canonical_form(&cs);
            println!("key: {}", form.key);
            print!("{}", form.text);
            Ok(ExitCode::SUCCESS)
        }
        "encode" => run_encode(&f, path, &text),
        "session" => run_session(&f, &text),
        "primes" => {
            let cs = parse_constraints(&text)?;
            let cap = f.number("--cap")?.unwrap_or(50_000);
            if cap == 0 {
                return Err(EncodeError::limit("--cap must be positive"));
            }
            let initial = initial_dichotomies(&cs, !cs.has_output_constraints());
            println!("{} initial encoding-dichotomies:", initial.len());
            for d in &initial {
                println!("  {}", d.display(&cs));
            }
            let (primes, stats) = generate_primes_with(&initial, cap, f.threads()?)?;
            println!("{} prime encoding-dichotomies:", primes.len());
            for p in &primes {
                println!("  {}", p.display(&cs));
            }
            eprintln!(
                "{} ps steps, peak {} terms, {} threads",
                stats.ps_steps, stats.peak_terms, stats.threads
            );
            Ok(ExitCode::SUCCESS)
        }
        "fsm" => {
            let fsm = Fsm::parse_kiss2(&text)?;
            println!("# {fsm}");
            if f.flag("--assign") {
                let strategy = if f.flag("--mixed") {
                    Strategy::ExactMixed(OutputProfile::default())
                } else {
                    Strategy::HeuristicInput(CostFunction::Cubes)
                };
                let a = assign_states(&fsm, &strategy)?;
                println!(
                    "# {} of {} face constraints satisfied; PLA {} cubes / {} literals",
                    a.satisfied.0, a.satisfied.1, a.pla_cost.0, a.pla_cost.1
                );
                print!("{}", a.encoding.display(&a.constraints));
                return Ok(ExitCode::SUCCESS);
            }
            let cs = if f.flag("--mixed") {
                mixed_constraints(&fsm, &OutputProfile::default())
            } else if f.flag("--dc") {
                input_constraints_with_dc(&fsm)
            } else {
                input_constraints(&fsm)
            };
            println!("symbols: {}", fsm.state_names().join(" "));
            print!("{cs}");
            Ok(ExitCode::SUCCESS)
        }
        "minimize" => {
            let pla = parse_pla_text(&text).map_err(EncodeError::parse)?;
            let m = pla.minimize();
            let (cubes, lits) = ioenc::espresso::summary(&m, pla.inputs());
            eprintln!("# minimized to {cubes} product terms, {lits} input literals");
            print!("{}", cover_to_pla_text(&m, pla.inputs()));
            Ok(ExitCode::SUCCESS)
        }
        "table" => {
            let cs = parse_constraints(&text)?;
            let form = BinateFormulation::build(&cs);
            println!("columns: {:?}", form.columns);
            print!("{}", form.display());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(EncodeError::parse(format!("unknown subcommand '{other}'"))),
    }
}

/// Builds the [`EncodeSpec`] from `encode` flags (shared by the plain and
/// `--json` output paths, so both solve the identical request).
fn encode_spec(f: &Flags<'_>) -> Result<EncodeSpec, EncodeError> {
    if f.flag("--auto") && f.flag("--heuristic") {
        return Err(EncodeError::limit(
            "--auto and --heuristic are mutually exclusive",
        ));
    }
    let bits = f.number("--bits")?;
    let mode = if f.flag("--auto") {
        Mode::Auto
    } else if f.flag("--heuristic") {
        let cost = match f.value("--cost").unwrap_or("violations") {
            "violations" => CostFunction::Violations,
            "cubes" => CostFunction::Cubes,
            "literals" => CostFunction::Literals,
            other => {
                return Err(EncodeError::parse(format!(
                    "unknown cost function '{other}'"
                )))
            }
        };
        Mode::Heuristic { bits, cost }
    } else {
        Mode::Exact {
            prime_cap: f.number("--prime-cap")?,
        }
    };
    let deadline_ms = f.number("--deadline-ms")?;
    if deadline_ms == Some(0) {
        return Err(EncodeError::limit("--deadline-ms must be positive"));
    }
    Ok(EncodeSpec {
        mode,
        max_primes: f.number("--max-primes")?,
        max_nodes: f.number("--max-nodes")?.map(|n| n as u64),
        max_evals: f.number("--max-evals")?.map(|n| n as u64),
        max_ps_steps: f.number("--max-ps-steps")?.map(|n| n as u64),
        deadline_ms: deadline_ms.map(|n| n as u64),
        parallelism: f.threads()?,
    })
}

fn run_encode(f: &Flags<'_>, path: &str, text: &str) -> Result<ExitCode, EncodeError> {
    let spec = encode_spec(f)?;
    if f.flag("--json") {
        // The same pipeline `serve` workers run; parse errors land in the
        // JSON too, so scripted callers never have to scrape stderr.
        let out = outcome(text, &spec, None, None);
        println!("{}", out.json);
        return Ok(ExitCode::from(out.exit_code));
    }
    let cs = parse_constraints(text)?;
    let form = canonical_form(&cs);
    let r = match solve_fresh(&cs, &form, &spec, None) {
        Ok(r) => r,
        Err(e) => return fail_with_explanation(&cs, path, e),
    };
    match &r.mode {
        ModeOutcome::Exact { optimal } => println!(
            "exact minimum-length encoding, {} bits ({} primes{}):",
            r.encoding.width(),
            r.work.num_primes,
            if *optimal { "" } else { ", node limit hit" }
        ),
        ModeOutcome::Heuristic { .. } => {
            let cost = match &spec.mode {
                Mode::Heuristic { cost, .. } => *cost,
                _ => CostFunction::Violations,
            };
            println!(
                "heuristic encoding, {} bits, cost = {}:",
                r.encoding.width(),
                ioenc::core::cost_of(&cs, &r.encoding, cost)
            );
        }
        ModeOutcome::Auto { rung, optimal } => println!(
            "{} encoding, {} bits{}:",
            rung,
            r.encoding.width(),
            if *optimal { " (minimum length)" } else { "" }
        ),
    }
    print!("{}", r.encoding.display(&cs));
    for note in &r.notes {
        eprintln!("{note}");
    }
    if let Some(stats) = &r.stats_text {
        eprintln!("{stats}");
    }
    Ok(ExitCode::SUCCESS)
}

/// The `session` subcommand: an incremental edit/re-solve loop. The
/// constraint file seeds the session; one command per stdin line then
/// edits it:
///
/// ```text
/// add <constraint-line>      add a constraint and re-solve
/// remove <constraint-line>   remove the matching constraint, re-solve
/// show                       print the current constraint set
/// quit                       exit (EOF works too)
/// ```
///
/// Each solve prints the encoding to stdout (same bytes as a fresh
/// `ioenc encode` solve of the current set — the incremental path is
/// bit-identical by construction) and the reuse accounting to stderr.
/// Edit errors (bad line, unmatched removal, infeasible set) are
/// reported on stderr and the loop continues — for an infeasible set the
/// offending edit stays committed, so `remove` can repair it.
fn run_session(f: &Flags<'_>, text: &str) -> Result<ExitCode, EncodeError> {
    use ioenc::core::{Delta, Session, Solver, SolverMode};

    let cs = parse_constraints(text)?;
    let mut solver = Solver::new()
        .mode(if f.flag("--auto") {
            SolverMode::Auto
        } else {
            SolverMode::Exact
        })
        .threads(f.threads()?);
    if let Some(cap) = f.number("--prime-cap")? {
        if cap == 0 {
            return Err(EncodeError::limit("--prime-cap must be positive"));
        }
        solver = solver.prime_cap(cap);
    }
    let mut session = Session::open(cs).with_solver(solver);

    let report = |session: &mut Session, delta: &Delta| match session.apply(delta) {
        Ok(out) => {
            println!("{} bits:", out.solution.encoding.width());
            print!("{}", out.solution.encoding.display(session.constraints()));
            if out.reuse.incremental {
                eprintln!(
                    "incremental: {} raises reused, {} recomputed, {} fresh; {} prime cliques{}",
                    out.reuse.raises_reused,
                    out.reuse.raises_recomputed,
                    out.reuse.raises_fresh,
                    out.reuse.cliques,
                    if out.reuse.cover_replayed {
                        "; cover replayed"
                    } else {
                        ""
                    }
                );
            } else {
                eprintln!("solved from scratch");
            }
        }
        Err(e) => eprintln!("error: {e}"),
    };
    report(&mut session, &Delta::new());

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let cmd = line.trim();
        if cmd.is_empty() {
            continue;
        }
        if cmd == "quit" || cmd == "exit" {
            break;
        }
        if cmd == "show" {
            let cs = session.constraints();
            let names: Vec<&str> = (0..cs.num_symbols()).map(|s| cs.name(s)).collect();
            println!("symbols: {}", names.join(" "));
            print!("{cs}");
            continue;
        }
        if let Some(rest) = cmd.strip_prefix("add ") {
            report(&mut session, &Delta::new().add(rest));
        } else if let Some(rest) = cmd.strip_prefix("remove ") {
            report(&mut session, &Delta::new().remove(rest));
        } else {
            eprintln!("error: unknown session command '{cmd}' (add/remove/show/quit)");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn run_serve(f: &Flags<'_>) -> Result<ExitCode, EncodeError> {
    let workers = f.number("--workers")?.unwrap_or(4);
    if workers == 0 {
        return Err(EncodeError::limit("--workers must be positive"));
    }
    let queue = f.number("--queue")?.unwrap_or(64);
    if queue == 0 {
        return Err(EncodeError::limit("--queue must be positive"));
    }
    let cache = match f.value("--cache") {
        None if f.flag("--cache") => {
            return Err(EncodeError::parse("--cache requires a value (N or 'off')"))
        }
        None => 1024,
        Some("off") => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|e| EncodeError::parse(format!("--cache {v}: {e}")))?,
    };
    let mut opts = ServeOptions::new()
        .with_workers(workers)
        .with_queue_capacity(queue)
        .with_cache_entries(cache)
        .with_http(f.flag("--http"));
    if let Some(dir) = f.value("--cache-dir") {
        if cache == 0 {
            return Err(EncodeError::parse(
                "--cache-dir needs the cache enabled; drop '--cache off'",
            ));
        }
        opts = opts.with_cache_dir(dir);
    } else if f.flag("--cache-dir") {
        return Err(EncodeError::parse("--cache-dir requires a path"));
    }
    if let Some(v) = f.value("--shards") {
        let shards = v
            .parse::<u32>()
            .map_err(|e| EncodeError::parse(format!("--shards {v}: {e}")))?;
        if shards == 0 || shards > 256 {
            return Err(EncodeError::limit("--shards must be between 1 and 256"));
        }
        opts = opts.with_cache_shards(shards);
    } else if f.flag("--shards") {
        return Err(EncodeError::parse("--shards requires a count"));
    }
    if f.flag("--http") && !f.flag("--tcp") {
        return Err(EncodeError::parse("--http requires --tcp PORT"));
    }
    let served = if f.flag("--tcp") {
        let port = match f.value("--tcp") {
            Some(v) => v
                .parse::<u16>()
                .map_err(|e| EncodeError::parse(format!("--tcp {v}: {e}")))?,
            None => return Err(EncodeError::parse("--tcp requires a port (0 = ephemeral)")),
        };
        serve_tcp(&opts, port)
    } else {
        serve_stdio(&opts)
    };
    served.map_err(|e| EncodeError::io("serve", &e))?;
    Ok(ExitCode::SUCCESS)
}

/// Prints the lint explanation attached to an infeasible encode failure
/// (stderr) and turns it into the infeasibility exit code, skipping the
/// usage blurb. Errors without an explanation propagate unchanged.
fn fail_with_explanation(
    cs: &ConstraintSet,
    origin: &str,
    e: EncodeError,
) -> Result<ExitCode, EncodeError> {
    match e {
        EncodeError::Infeasible {
            ref uncovered,
            explanation: Some(ref report),
        } => {
            eprintln!(
                "error: constraints are unsatisfiable ({} uncovered initial dichotomies)",
                uncovered.len()
            );
            eprint!("{}", report.render(cs, Some(origin)));
            Ok(ExitCode::from(e.exit_code()))
        }
        other => Err(other),
    }
}

/// Parses the `symbols:`-headed constraint file format (shared with the
/// `serve` request pipeline so both report identical parse errors).
fn parse_constraints(text: &str) -> Result<ConstraintSet, EncodeError> {
    ioenc::server::parse_constraint_text(text)
}
