//! `ioenc` — command-line front end for the encoding-constraint framework.
//!
//! ```text
//! ioenc check <constraints-file>                 feasibility (P-1)
//! ioenc lint <constraints-file> [--json]         static analysis + conflict cores
//! ioenc encode <constraints-file> [options]      exact or heuristic codes
//! ioenc primes <constraints-file> [--cap N]      prime encoding-dichotomies
//! ioenc fsm <kiss2-file> [--mixed] [--dc]        constraints from an FSM
//! ioenc table <constraints-file>                 the Section 4 binate table
//! ```
//!
//! Constraint files use the [`ConstraintSet::parse`] syntax preceded by a
//! `symbols: a b c …` header line:
//!
//! ```text
//! symbols: a b c d
//! (b,c)
//! (c,d)
//! a>c
//! a=b|d
//! ```
//!
//! Encoding results go to stdout; solver statistics go to stderr, so the
//! codes stay byte-identical across thread counts and pipe cleanly.

#![forbid(unsafe_code)]

use ioenc::core::lint::{lint, LintOptions};
use ioenc::core::{
    check_feasible, encode_auto, exact_encode_report, generate_primes_with, heuristic_encode,
    initial_dichotomies, AutoOptions, BinateFormulation, Budget, ConstraintSet, CostFunction,
    EncodeError, ExactOptions, HeuristicOptions, Parallelism,
};
use ioenc::espresso::{cover_to_pla_text, parse_pla_text};
use ioenc::kiss::Fsm;
use ioenc::symbolic::{
    assign_states, input_constraints, input_constraints_with_dc, mixed_constraints, OutputProfile,
    Strategy,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  ioenc check  <constraints-file>
  ioenc lint   <constraints-file> [--json] [--deny-warnings]
               [--threads auto|off|N]
  ioenc encode <constraints-file> [--heuristic] [--bits N]
               [--cost violations|cubes|literals] [--prime-cap N]
               [--auto] [--max-primes N] [--max-nodes N] [--max-evals N]
               [--max-ps-steps N] [--deadline-ms T]
               [--threads auto|off|N]
  ioenc primes <constraints-file> [--cap N] [--threads auto|off|N]
  ioenc fsm    <kiss2-file> [--mixed] [--dc] [--assign]
  ioenc table  <constraints-file>
  ioenc minimize <pla-file>";

fn run(args: &[String]) -> Result<ExitCode, EncodeError> {
    let mut it = args.iter();
    let cmd = it
        .next()
        .ok_or_else(|| EncodeError::parse("missing subcommand"))?;
    let path = it
        .next()
        .ok_or_else(|| EncodeError::parse("missing input file"))?;
    let rest: Vec<&String> = it.collect();
    let flag = |name: &str| rest.iter().any(|a| *a == name);
    let value = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| *a == name)
            .and_then(|i| rest.get(i + 1))
            .map(|s| s.as_str())
    };
    let number = |name: &str| -> Result<Option<usize>, EncodeError> {
        match value(name) {
            Some(v) => v
                .parse::<usize>()
                .map_err(|e| EncodeError::parse(format!("{name} {v}: {e}")))
                .map(Some),
            None if flag(name) => Err(EncodeError::parse(format!("{name} requires a value"))),
            None => Ok(None),
        }
    };
    let threads = || -> Result<Parallelism, EncodeError> {
        if flag("--threads") && value("--threads").is_none() {
            return Err(EncodeError::parse(
                "--threads requires a value (auto|off|N)",
            ));
        }
        Ok(match value("--threads") {
            None | Some("auto") => Parallelism::Auto,
            Some("off") => Parallelism::Off,
            Some(v) => {
                let n = v
                    .parse::<usize>()
                    .map_err(|e| EncodeError::parse(format!("--threads {v}: {e}")))?;
                if n == 0 {
                    return Err(EncodeError::limit("--threads must be positive (or 'off')"));
                }
                Parallelism::Fixed(n)
            }
        })
    };
    let text = std::fs::read_to_string(path).map_err(|e| EncodeError::io(path, &e))?;

    match cmd.as_str() {
        "check" => {
            let cs = parse_constraints(&text)?;
            let r = check_feasible(&cs);
            println!(
                "{} initial encoding-dichotomies, {} valid after raising",
                r.initial.len(),
                r.raised.len()
            );
            if r.is_feasible() {
                println!("FEASIBLE");
            } else {
                println!("INFEASIBLE — uncovered initial encoding-dichotomies:");
                for d in &r.uncovered {
                    println!("  {}", d.display(&cs));
                }
                let report = lint(&cs, &LintOptions::new());
                print!("{}", report.render(&cs, Some(path)));
            }
            Ok(ExitCode::SUCCESS)
        }
        "lint" => {
            let cs = parse_constraints(&text)?;
            threads()?; // validated for CLI uniformity; the lint is single-threaded
            let report = lint(&cs, &LintOptions::new());
            if flag("--json") {
                print!("{}", report.render_json(&cs, Some(path)));
            } else {
                print!("{}", report.render(&cs, Some(path)));
            }
            let failed = report.has_errors()
                || !report.feasible
                || (flag("--deny-warnings") && report.warnings() > 0);
            Ok(if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "encode" => {
            let cs = parse_constraints(&text)?;
            let bits = number("--bits")?;
            if flag("--auto") {
                if flag("--heuristic") {
                    return Err(EncodeError::limit(
                        "--auto and --heuristic are mutually exclusive",
                    ));
                }
                let mut budget = Budget::unlimited();
                let mut budgeted = false;
                if let Some(n) = number("--max-primes")? {
                    budget = budget.with_max_primes(n);
                    budgeted = true;
                }
                if let Some(n) = number("--max-nodes")? {
                    budget = budget.with_max_cover_nodes(n as u64);
                    budgeted = true;
                }
                if let Some(n) = number("--max-evals")? {
                    budget = budget.with_max_evals(n as u64);
                    budgeted = true;
                }
                if let Some(n) = number("--max-ps-steps")? {
                    budget = budget.with_max_ps_steps(n as u64);
                    budgeted = true;
                }
                if let Some(ms) = number("--deadline-ms")? {
                    if ms == 0 {
                        return Err(EncodeError::limit("--deadline-ms must be positive"));
                    }
                    budget = budget.with_deadline(std::time::Duration::from_millis(ms as u64));
                    budgeted = true;
                }
                if !budgeted {
                    return Err(EncodeError::limit(
                        "--auto needs at least one budget: --max-primes, --max-nodes, \
                         --max-evals, --max-ps-steps or --deadline-ms",
                    ));
                }
                let opts = AutoOptions::new()
                    .with_budget(budget)
                    .with_parallelism(threads()?);
                let report = match encode_auto(&cs, &opts) {
                    Ok(r) => r,
                    Err(e) => return fail_with_explanation(&cs, path, e),
                };
                println!(
                    "{} encoding, {} bits{}:",
                    report.rung,
                    report.encoding.width(),
                    if report.optimal {
                        " (minimum length)"
                    } else {
                        ""
                    }
                );
                print!("{}", report.encoding.display(&cs));
                for a in &report.attempts {
                    match &a.error {
                        Some(e) => eprintln!("{} rung fell short: {e}", a.rung),
                        None => eprintln!(
                            "{} rung fell short: best encoding still violated constraints",
                            a.rung
                        ),
                    }
                }
                if report.reused_raised {
                    eprintln!("fallback reused the exact rung's raised dichotomies");
                }
                eprintln!("{}", report.stats.render());
                return Ok(ExitCode::SUCCESS);
            }
            if flag("--heuristic") {
                let cost = match value("--cost").unwrap_or("violations") {
                    "violations" => CostFunction::Violations,
                    "cubes" => CostFunction::Cubes,
                    "literals" => CostFunction::Literals,
                    other => {
                        return Err(EncodeError::parse(format!(
                            "unknown cost function '{other}'"
                        )))
                    }
                };
                let mut opts = HeuristicOptions::new()
                    .with_cost(cost)
                    .with_parallelism(threads()?);
                if let Some(bits) = bits {
                    opts = opts.with_code_length(bits);
                }
                let enc = heuristic_encode(&cs, &opts)?;
                println!(
                    "heuristic encoding, {} bits, cost = {}:",
                    enc.width(),
                    ioenc::core::cost_of(&cs, &enc, cost)
                );
                print!("{}", enc.display(&cs));
            } else {
                let mut opts = ExactOptions::new().with_parallelism(threads()?);
                if let Some(cap) = number("--prime-cap")? {
                    if cap == 0 {
                        return Err(EncodeError::limit("--prime-cap must be positive"));
                    }
                    opts = opts.with_prime_cap(cap);
                }
                let report = match exact_encode_report(&cs, &opts) {
                    Ok(r) => r,
                    Err(e) => return fail_with_explanation(&cs, path, e),
                };
                println!(
                    "exact minimum-length encoding, {} bits ({} primes{}):",
                    report.encoding.width(),
                    report.num_primes,
                    if report.optimal {
                        ""
                    } else {
                        ", node limit hit"
                    }
                );
                print!("{}", report.encoding.display(&cs));
                eprintln!("{}", report.stats.render());
            }
            Ok(ExitCode::SUCCESS)
        }
        "primes" => {
            let cs = parse_constraints(&text)?;
            let cap = number("--cap")?.unwrap_or(50_000);
            if cap == 0 {
                return Err(EncodeError::limit("--cap must be positive"));
            }
            let initial = initial_dichotomies(&cs, !cs.has_output_constraints());
            println!("{} initial encoding-dichotomies:", initial.len());
            for d in &initial {
                println!("  {}", d.display(&cs));
            }
            let (primes, stats) = generate_primes_with(&initial, cap, threads()?)?;
            println!("{} prime encoding-dichotomies:", primes.len());
            for p in &primes {
                println!("  {}", p.display(&cs));
            }
            eprintln!(
                "{} ps steps, peak {} terms, {} threads",
                stats.ps_steps, stats.peak_terms, stats.threads
            );
            Ok(ExitCode::SUCCESS)
        }
        "fsm" => {
            let fsm = Fsm::parse_kiss2(&text)?;
            println!("# {fsm}");
            if flag("--assign") {
                let strategy = if flag("--mixed") {
                    Strategy::ExactMixed(OutputProfile::default())
                } else {
                    Strategy::HeuristicInput(CostFunction::Cubes)
                };
                let a = assign_states(&fsm, &strategy)?;
                println!(
                    "# {} of {} face constraints satisfied; PLA {} cubes / {} literals",
                    a.satisfied.0, a.satisfied.1, a.pla_cost.0, a.pla_cost.1
                );
                print!("{}", a.encoding.display(&a.constraints));
                return Ok(ExitCode::SUCCESS);
            }
            let cs = if flag("--mixed") {
                mixed_constraints(&fsm, &OutputProfile::default())
            } else if flag("--dc") {
                input_constraints_with_dc(&fsm)
            } else {
                input_constraints(&fsm)
            };
            println!("symbols: {}", fsm.state_names().join(" "));
            print!("{cs}");
            Ok(ExitCode::SUCCESS)
        }
        "minimize" => {
            let pla = parse_pla_text(&text).map_err(EncodeError::parse)?;
            let m = pla.minimize();
            let (cubes, lits) = ioenc::espresso::summary(&m, pla.inputs());
            eprintln!("# minimized to {cubes} product terms, {lits} input literals");
            print!("{}", cover_to_pla_text(&m, pla.inputs()));
            Ok(ExitCode::SUCCESS)
        }
        "table" => {
            let cs = parse_constraints(&text)?;
            let f = BinateFormulation::build(&cs);
            println!("columns: {:?}", f.columns);
            print!("{}", f.display());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(EncodeError::parse(format!("unknown subcommand '{other}'"))),
    }
}

/// Prints the lint explanation attached to an infeasible encode failure
/// (stderr) and turns it into a plain failure exit, skipping the usage
/// blurb. Errors without an explanation propagate unchanged.
fn fail_with_explanation(
    cs: &ConstraintSet,
    origin: &str,
    e: EncodeError,
) -> Result<ExitCode, EncodeError> {
    match e {
        EncodeError::Infeasible {
            ref uncovered,
            explanation: Some(ref report),
        } => {
            eprintln!(
                "error: constraints are unsatisfiable ({} uncovered initial dichotomies)",
                uncovered.len()
            );
            eprint!("{}", report.render(cs, Some(origin)));
            Ok(ExitCode::FAILURE)
        }
        other => Err(other),
    }
}

/// Parses the `symbols:`-headed constraint file format. The header line is
/// replaced by a blank line (not removed) so that the spans the parser
/// attaches keep pointing at the original file's line numbers.
fn parse_constraints(text: &str) -> Result<ConstraintSet, EncodeError> {
    let mut names: Option<Vec<&str>> = None;
    let mut body = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("symbols:") {
            if names.is_none() {
                names = Some(rest.split_whitespace().collect());
                body.push('\n');
                continue;
            }
        }
        body.push_str(line);
        body.push('\n');
    }
    let names = names.ok_or_else(|| EncodeError::parse("missing 'symbols: …' header line"))?;
    ConstraintSet::parse(&names, &body)
}
