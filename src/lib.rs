#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # ioenc — input and output encoding constraint satisfaction
//!
//! A production-quality Rust reproduction of
//! *A Framework for Satisfying Input and Output Encoding Constraints*
//! (Saldanha, Villa, Brayton, Sangiovanni-Vincentelli; UCB/ERL M90/110,
//! DAC 1991).
//!
//! This umbrella crate re-exports the workspace crates:
//!
//! * [`core`] — the paper's contribution: the encoding-dichotomy framework
//!   (feasibility check P-1, exact minimum-length encoding P-2, bounded
//!   length heuristic P-3, don't cares, distance-2 and non-face constraints).
//! * [`cube`] / [`espresso`] — multi-valued cube calculus and a two-level
//!   minimizer for cost evaluation and constraint generation.
//! * [`cover`] — exact and heuristic unate/binate covering solvers.
//! * [`kiss`] — FSM model, KISS2 parsing, and the benchmark suite.
//! * [`symbolic`] — symbolic minimization front end generating constraints.
//! * [`nova`] / [`anneal`] — the NOVA-like and simulated-annealing baselines
//!   used in the paper's Tables 2 and 3.
//! * [`server`] — the `ioenc serve` batch-encoding service: canonicalization,
//!   a content-addressed result cache, and an NDJSON worker-pool server
//!   whose responses are byte-identical to `ioenc encode --json`.
//!
//! # Quickstart
//!
//! ```
//! use ioenc::core::{ConstraintSet, Solver, SolverMode};
//!
//! // The Section 1 example of the paper:
//! // faces (b,c),(c,d),(b,a),(a,d); b>c, a>c; a = b ∨ d.
//! let cs = ConstraintSet::parse(
//!     &["a", "b", "c", "d"],
//!     "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
//! )?;
//! let solution = Solver::new().mode(SolverMode::Exact).solve(&cs)?;
//! assert_eq!(solution.encoding.width(), 2); // the paper's minimum code length
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Re-solving after edits? Open a [`Session`](core::Session) and apply
//! [`Delta`](core::Delta)s — the solver reuses the raising and
//! prime-generation work the edit left intact, and the result is
//! bit-identical to solving the edited set from scratch:
//!
//! ```
//! use ioenc::core::{ConstraintSet, Delta, Session};
//!
//! let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(a,b)\n(c,d)")?;
//! let mut session = Session::open(cs);
//! session.solve()?;
//! let out = session.apply(&Delta::new().add("(b,c)").remove("(c,d)"))?;
//! assert!(out.reuse.incremental);
//! # Ok::<(), ioenc::core::EncodeError>(())
//! ```

pub mod prelude {
    //! One-stop imports for the common encoding workflow.
    //!
    //! ```
    //! use ioenc::prelude::*;
    //!
    //! let cs = ConstraintSet::parse(&["a", "b", "c"], "(a,b)")?;
    //! let solution = Solver::new().mode(SolverMode::Exact).solve(&cs)?;
    //! assert!(solution.encoding.width() >= 2);
    //! # Ok::<(), EncodeError>(())
    //! ```

    #[allow(deprecated)]
    pub use ioenc_core::{bounded_exact_encode, exact_encode, heuristic_encode};
    pub use ioenc_core::{
        check_feasible, exact_encode_report, BoundedExactOptions, Budget, ConstraintSet,
        CostFunction, Delta, EncodeError, Encoding, ExactOptions, HeuristicOptions, Parallelism,
        Session, SessionOutcome, Solution, SolutionDetail, Solver, SolverMode, SolverStats,
    };
    pub use ioenc_kiss::Fsm;
}

pub use ioenc_anneal as anneal;
pub use ioenc_bitset as bitset;
pub use ioenc_core as core;
pub use ioenc_cover as cover;
pub use ioenc_cube as cube;
pub use ioenc_espresso as espresso;
pub use ioenc_kiss as kiss;
pub use ioenc_nova as nova;
pub use ioenc_server as server;
pub use ioenc_symbolic as symbolic;
