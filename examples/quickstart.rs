//! Quickstart: parse a constraint set, check feasibility, find a
//! minimum-length encoding and verify it.
//!
//! Run with `cargo run --example quickstart`.

use ioenc::core::{check_feasible, exact_encode_report, ConstraintSet, ExactOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The running example from Section 1 of the paper: four face
    // constraints, two dominance constraints and one disjunctive
    // constraint over the symbols a, b, c, d.
    let cs = ConstraintSet::parse(
        &["a", "b", "c", "d"],
        "(b,c)\n(c,d)\n(b,a)\n(a,d)\n\
         b>c\na>c\n\
         a=b|d",
    )?;

    // P-1: is the constraint set satisfiable at all? (Polynomial check.)
    let feasibility = check_feasible(&cs);
    println!("feasible: {}", feasibility.is_feasible());

    // P-2: find codes of minimum length satisfying everything.
    let report = exact_encode_report(&cs, &ExactOptions::default())?;
    println!(
        "minimum code length: {} bits ({} prime encoding-dichotomies considered)",
        report.encoding.width(),
        report.num_primes
    );
    print!("{}", report.encoding.display(&cs));

    // Every encoding can be independently re-verified.
    assert!(report.encoding.verify(&cs).is_empty());
    println!("verification: all constraints satisfied");
    Ok(())
}
