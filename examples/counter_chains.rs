//! Chain constraints for counter-based PLA structures (Section 8.4,
//! Amann–Baitinger): an FSM whose main loop is implemented by a counter
//! needs *consecutive* codes along the loop, which the dichotomy framework
//! cannot express; the paper leaves the problem open and suggests explicit
//! enumeration — which [`encode_with_chains`] implements.
//!
//! Run with `cargo run --example counter_chains`.

use ioenc::core::{encode_with_chains, ChainConstraint, ChainOptions, ConstraintSet, Encoding};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's example: faces (b,c),(a,b) with the chain d - b - c - a.
    let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(b,c)\n(a,b)")?;
    let chain = ChainConstraint::new([3, 1, 2, 0]); // d - b - c - a

    // The paper's satisfying assignment (wrapping counter semantics).
    let paper = Encoding::new(2, vec![0b00, 0b10, 0b11, 0b01]);
    assert!(paper.satisfies(&cs));
    assert!(chain.is_satisfied(&paper));
    println!("paper's assignment a=00 b=10 c=11 d=01 verifies (chain wraps mod 4)");

    let enc = encode_with_chains(&cs, std::slice::from_ref(&chain), &ChainOptions::default())?;
    println!("\nfound {} -bit assignment:", enc.width());
    print!("{}", enc.display(&cs));
    println!("chain d-b-c-a satisfied: {}", chain.is_satisfied(&enc));

    // A longer controller: a 9-state count sequence inside a 16-code space,
    // with a face constraint on two non-chain states.
    let names: Vec<String> = (0..11).map(|i| format!("q{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let cs = ConstraintSet::parse(&name_refs, "(q9,q10)")?;
    let long = ChainConstraint::new(0..9);
    let enc = encode_with_chains(
        &cs,
        std::slice::from_ref(&long),
        &ChainOptions {
            code_length: Some(4),
            ..Default::default()
        },
    )?;
    println!("\n9-state counter chain in 4 bits, with face (q9,q10):");
    print!("{}", enc.display(&cs));
    assert!(long.is_satisfied(&enc));
    assert!(enc.satisfies(&cs));
    println!("all constraints verified");
    Ok(())
}
