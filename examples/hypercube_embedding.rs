//! The NP-completeness reduction of Theorem 2.1, run in both directions:
//! deciding whether a graph is a subgraph of the k-cube is exactly the face
//! hypercube embedding problem for two-symbol face constraints on 2^k
//! symbols.
//!
//! Run with `cargo run --example hypercube_embedding`.

use ioenc::core::npc::Graph;
use ioenc::core::{Solver, SolverMode};

fn main() {
    let cases: Vec<(&str, Graph, usize)> = vec![
        ("4-cycle", Graph::cycle(4), 2),
        ("K4", Graph::complete(4), 2),
        ("8-cycle", Graph::cycle(8), 3),
        ("3-cube", Graph::hypercube(3), 3),
    ];
    for (name, graph, k) in cases {
        let embeds = graph.embeds_in_cube(k);
        let cs = graph.to_face_constraints();
        let outcome = Solver::new()
            .mode(SolverMode::Exact)
            .solve(&cs)
            .map(|s| s.encoding);
        let encodable = matches!(&outcome, Ok(enc) if enc.width() <= k);
        println!(
            "{name}: {} vertices, {} edges — embeds in the {k}-cube: {embeds}; \
             face constraints encodable in {k} bits: {encodable}",
            graph.num_vertices(),
            graph.edges().len(),
        );
        assert_eq!(embeds, encodable, "Theorem 2.1 equivalence must hold");
        if let Ok(enc) = outcome {
            if enc.width() <= k {
                println!("  an embedding, read off the codes:");
                for v in 0..graph.num_vertices() {
                    println!("    vertex {v} -> {:0k$b}", enc.code(v), k = k);
                }
            } else {
                println!("  (minimum encodable width is {} > {k})", enc.width());
            }
        }
    }
    println!("\nFace hypercube embedding subsumes subgraph-of-hypercube, hence NP-complete.");
}
