//! The code-length / constraint-satisfaction trade-off that motivates
//! problem P-3 (Section 7): satisfying *all* constraints may need a long
//! code, while a shorter code violates a few constraints but can still give
//! the smaller implementation.
//!
//! Run with `cargo run --example length_tradeoff`.

use ioenc::core::{cost_of, ConstraintSet, CostFunction, Solver, SolverMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Section 7 example: (e,f,c), (e,d,g), (a,b,d), (a,g,f,d) over
    // seven symbols need 4 bits to satisfy everything.
    let names = ["a", "b", "c", "d", "e", "f", "g"];
    let cs = ConstraintSet::parse(&names, "(e,f,c)\n(e,d,g)\n(a,b,d)\n(a,g,f,d)")?;

    let exact = Solver::new().mode(SolverMode::Exact).solve(&cs)?.encoding;
    println!(
        "satisfying all {} constraints needs {} bits",
        cs.faces().len(),
        exact.width()
    );

    println!("\nlength   violations   cubes   literals");
    for bits in 3..=6 {
        let enc = Solver::new()
            .mode(SolverMode::Heuristic)
            .code_length(bits)
            .cost(CostFunction::Cubes)
            .solve(&cs)?
            .encoding;
        println!(
            "{:>6} {:>12} {:>7} {:>10}",
            bits,
            cost_of(&cs, &enc, CostFunction::Violations),
            cost_of(&cs, &enc, CostFunction::Cubes),
            cost_of(&cs, &enc, CostFunction::Literals),
        );
    }
    println!(
        "\nShorter codes violate constraints (extra product terms); longer codes\n\
         satisfy everything but add PLA columns — the trade-off P-3 navigates."
    );
    Ok(())
}
