//! State assignment of a finite state machine, end to end:
//! KISS2 text → symbolic minimization → encoding constraints → codes →
//! encoded PLA size, compared against a naive binary assignment.
//!
//! Run with `cargo run --example state_assignment`.

use ioenc::core::{count_violations, CostFunction, Solver, SolverMode};
use ioenc::kiss::Fsm;
use ioenc::symbolic::{input_constraints, measure_encoded, mixed_constraints, OutputProfile};

const MACHINE: &str = "\
.i 2
.o 2
.s 8
.r idle
00 idle  idle  00
01 idle  load  00
10 idle  store 00
11 idle  exec  01
-- load  wait1 10
-- store wait1 10
00 wait1 wait1 00
-- exec  wait2 11
01 wait1 idle  01
1- wait1 idle  01
00 wait2 wait2 00
-1 wait2 done  01
10 wait2 done  01
-- done  flush 11
-- flush idle  00
.e
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fsm = Fsm::parse_kiss2(MACHINE)?;
    println!("machine: {fsm}");

    // Symbolic minimization yields the face constraints.
    let input_cs = input_constraints(&fsm);
    println!("\nface constraints from multiple-valued minimization:");
    print!("{input_cs}");

    // Add output constraints (dominance / disjunctive) and solve exactly.
    let mixed = mixed_constraints(&fsm, &OutputProfile::default());
    match Solver::new().mode(SolverMode::Exact).solve(&mixed) {
        Ok(s) => {
            let enc = s.encoding;
            println!("\nexact mixed encoding ({} bits):", enc.width());
            print!("{}", enc.display(&mixed));
            let (cubes, lits) = measure_encoded(&fsm, &enc);
            println!("encoded PLA: {cubes} product terms, {lits} input literals");
        }
        Err(e) => println!("\nexact mixed encoding unavailable: {e}"),
    }

    // Minimum-length heuristic encoding on the input constraints alone.
    let heur = Solver::new()
        .mode(SolverMode::Heuristic)
        .cost(CostFunction::Cubes)
        .solve(&input_cs)?
        .encoding;
    let (h_cubes, h_lits) = measure_encoded(&fsm, &heur);
    println!(
        "\nheuristic {}-bit encoding: {} of {} face constraints satisfied; PLA {} cubes / {} literals",
        heur.width(),
        input_cs.faces().len() - count_violations(&input_cs, &heur),
        input_cs.faces().len(),
        h_cubes,
        h_lits
    );

    // Baseline: naive binary (counter-order) assignment.
    let naive = ioenc::core::Encoding::new(3, (0..8u64).collect());
    let (n_cubes, n_lits) = measure_encoded(&fsm, &naive);
    println!("naive binary encoding: PLA {n_cubes} cubes / {n_lits} literals");
    Ok(())
}
