//! Encoding for sequential testability (Section 8): distance-2 constraints
//! keep critical state pairs two bit-flips apart, and non-face constraints
//! force a face to be shared.
//!
//! Run with `cargo run --example testable_encoding`.

use ioenc::core::{hamming, ConstraintSet, Solver, SolverMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A controller with a normal face constraint plus testability
    // requirements: the RESET/RUN pair must be distance-2 apart (a single
    // bit flip can never silently switch them), and {run, halt, err} must
    // NOT span a private face.
    let names = ["reset", "run", "halt", "err", "dbg"];
    let cs = ConstraintSet::parse(
        &names,
        "(run,halt)\n\
         (reset,dbg)\n\
         dist2(reset,run)\n\
         !(run,halt,err)",
    )?;

    let enc = Solver::new().mode(SolverMode::Exact).solve(&cs)?.encoding;
    println!("minimum testable encoding ({} bits):", enc.width());
    print!("{}", enc.display(&cs));

    let reset = cs.symbol("reset").expect("known symbol");
    let run = cs.symbol("run").expect("known symbol");
    println!(
        "Hamming(reset, run) = {} (>= 2 as required)",
        hamming(enc.code(reset), enc.code(run))
    );
    assert!(enc.verify(&cs).is_empty());
    println!("all constraints verified");

    // Without the testability constraints the encoding is shorter.
    let plain = ConstraintSet::parse(&names, "(run,halt)\n(reset,dbg)")?;
    let plain_enc = Solver::new()
        .mode(SolverMode::Exact)
        .solve(&plain)?
        .encoding;
    println!(
        "\nwithout testability constraints: {} bits (testability cost: {} extra bits)",
        plain_enc.width(),
        enc.width() - plain_enc.width()
    );
    Ok(())
}
